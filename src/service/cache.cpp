#include "service/cache.hpp"

#include <sstream>

#include "common/check.hpp"

namespace mrlc::service {

std::uint64_t topology_hash(const std::string& canonical_network_text) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : canonical_network_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string WarmCache::result_key(const std::string& variant, double lifetime,
                                  std::int64_t budget) {
  std::ostringstream os;
  os.precision(17);
  os << variant << '|' << lifetime << '|' << budget;
  return os.str();
}

WarmCache::WarmCache(std::size_t capacity, std::size_t pool_sets)
    : capacity_(capacity), pool_sets_(pool_sets) {}

void WarmCache::touch(std::uint64_t topo, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(topo);
  entry.lru_pos = lru_.begin();
}

WarmCache::Entry* WarmCache::ensure_entry(std::uint64_t topo) {
  const auto it = entries_.find(topo);
  if (it != entries_.end()) {
    touch(topo, it->second);
    return &it->second;
  }
  // Evict from the cold end, skipping entries with any leased pool (a
  // leased pool is borrowed by an in-flight solve; evicting it would
  // dangle the pointer).
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    auto victim = lru_.end();
    bool evicted = false;
    while (victim != lru_.begin()) {
      --victim;
      const auto vit = entries_.find(*victim);
      MRLC_ENSURE(vit != entries_.end(), "LRU list out of sync with entries");
      if (!vit->second.any_leased()) {
        lru_.erase(victim);
        entries_.erase(vit);
        ++stats_.evictions;
        evicted = true;
        break;
      }
    }
    if (!evicted) return nullptr;  // everything leased; refuse to grow
  }
  lru_.push_front(topo);
  Entry& entry = entries_[topo];
  entry.lru_pos = lru_.begin();
  return &entry;
}

const CachedResult* WarmCache::find_result(std::uint64_t topo,
                                           const std::string& key) {
  const auto it = entries_.find(topo);
  if (it != entries_.end()) {
    const auto rit = it->second.results.find(key);
    if (rit != it->second.results.end()) {
      ++stats_.result_hits;
      touch(topo, it->second);
      return &rit->second;
    }
  }
  ++stats_.result_misses;
  return nullptr;
}

void WarmCache::store_result(std::uint64_t topo, const std::string& key,
                             CachedResult result) {
  if (capacity_ == 0 || is_quarantined(topo)) return;
  Entry* entry = ensure_entry(topo);
  if (entry == nullptr) return;
  entry->results[key] = std::move(result);
}

core::SubtourCutPool* WarmCache::lease(std::uint64_t topo,
                                       const std::string& variant) {
  if (capacity_ == 0 || is_quarantined(topo)) return nullptr;
  Entry* entry = ensure_entry(topo);
  if (entry == nullptr) return nullptr;
  const auto [it, created] = entry->pools.try_emplace(variant);
  PoolSlot& slot = it->second;
  if (created) slot.pool.set_capacity(pool_sets_);
  if (slot.leased) return nullptr;
  slot.leased = true;
  ++stats_.pool_leases;
  return &slot.pool;
}

void WarmCache::release(std::uint64_t topo, const std::string& variant) {
  const auto it = entries_.find(topo);
  if (it == entries_.end()) return;  // quarantined while leased
  const auto pit = it->second.pools.find(variant);
  MRLC_ENSURE(pit != it->second.pools.end() && pit->second.leased,
              "release without a matching lease");
  pit->second.leased = false;
}

void WarmCache::quarantine(std::uint64_t topo) {
  if (!quarantined_.insert(topo).second) return;  // already quarantined
  ++stats_.poisoned;
  const auto it = entries_.find(topo);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
}

}  // namespace mrlc::service
