#pragma once

/// \file wire.hpp
/// \brief Framed wire protocol for the MRLC solver service
/// (mrlc-request-v1 / mrlc-response-v1).
///
/// Transport framing is deliberately dumb: a 4-byte magic `MRF1`, a 32-bit
/// little-endian payload length, then that many payload bytes.  Everything
/// interesting lives in the payload, which is line-oriented text in the
/// same spirit as the mrlc-network-v1 file format — human-readable,
/// versioned by its first line, and append-only for forward compatibility.
/// The framing layer rejects bad magic and oversized lengths *before*
/// allocating, so a corrupt or adversarial peer cannot make the daemon
/// balloon memory, and a malformed payload surfaces as a typed `WireError`
/// the server converts into an `invalid_request` reply — never a crash.
///
/// Request payload (`mrlc-request v1`):
///
///     mrlc-request v1
///     id <opaque token, no whitespace>
///     variant mrlc            # problem variant: mrlc | etx | min_energy
///                             #   | max_lifetime (docs/file_formats.md)
///     lifetime <LC, rounds>
///     budget <work units>     # optional; absent = unlimited
///     deadline-ms <ms>        # optional; absent = none
///     network <nbytes>
///     <nbytes of mrlc-network-v1 text>
///
/// Response payload (`mrlc-response v1`): id, typed `status`, optional
/// one-line `detail`, solution scalars, cache/queue diagnostics, and the
/// tree as a trailing `tree <nbytes>` byte block (present only when a tree
/// was produced).  docs/file_formats.md is the normative reference.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mrlc::service {

/// Malformed frame or payload.  The message is safe to echo back to the
/// peer in an `invalid_request` reply (it never contains payload bytes).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame header: magic + u32 LE payload length.
inline constexpr char kFrameMagic[4] = {'M', 'R', 'F', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Hard payload cap; a length field above this is rejected before any
/// allocation happens (a 64 MiB network is ~2 orders of magnitude beyond
/// the largest instance the solver targets).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

/// Typed response status, mirrored 1:1 onto the wire as lower-case tokens
/// (`to_string` / `status_from_string`).
enum class ResponseStatus {
  kOk,                ///< solved to convergence (anytime kOptimal)
  kBudgetExhausted,   ///< best incumbent returned, budget/deadline ran out
  kCancelled,         ///< watchdog or peer cancelled the request
  kInfeasible,        ///< no tree meets the lifetime bound
  kRejectedOverload,  ///< shed at admission: queue full (retryable)
  kRejectedDraining,  ///< shed at admission: daemon is draining (retryable
                      ///< against a replacement instance, not this one)
  kInvalidRequest,    ///< malformed frame/payload/network, or bad variant
  kInternalError,     ///< unexpected exception; the daemon itself survived
};

/// \return the stable lower-case wire token for `status`.
const char* to_string(ResponseStatus status) noexcept;

/// \brief Parses a wire status token.
/// \throws WireError on an unknown token.
ResponseStatus status_from_string(const std::string& token);

/// One solve request as carried on the wire.
struct WireRequest {
  std::string id;                ///< opaque caller token, echoed in replies
  std::string variant = "mrlc";  ///< problem variant (core::VariantId token)
  double lifetime = 0.0;         ///< LC, rounds (> 0)
  std::int64_t budget = -1;      ///< work-unit cap; < 0 = unlimited
  std::int64_t deadline_ms = -1; ///< wall-clock deadline; < 0 = none
  std::string network_text;      ///< mrlc-network-v1 bytes (parsed server-side)
};

/// One reply as carried on the wire.  Scalar fields are meaningful only
/// when `has_solution` (the encoder omits them otherwise); `queue_ms` /
/// `solve_ms` are zero when the service runs with timings off so replies
/// stay byte-deterministic.
struct WireResponse {
  std::string id;
  ResponseStatus status = ResponseStatus::kInternalError;
  std::string detail;            ///< one-line human-readable outcome
  bool has_solution = false;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  double gap = 0.0;
  std::int64_t budget_used = 0;
  std::string cache = "none";    ///< "hit" | "miss" | "none"
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  std::string tree_text;         ///< mrlc-tree-v1 bytes; empty when no tree
};

/// \brief Serializes a request into an (unframed) mrlc-request-v1 payload.
/// \throws WireError when fields cannot round-trip (whitespace in `id`, …).
std::string encode_request(const WireRequest& request);

/// \brief Parses an mrlc-request-v1 payload.
/// \throws WireError on any malformation (wrong header, unknown key,
///         duplicate key, bad number, short network block, …).
WireRequest decode_request(const std::string& payload);

/// \brief Serializes a response into an (unframed) mrlc-response-v1 payload.
std::string encode_response(const WireResponse& response);

/// \brief Parses an mrlc-response-v1 payload (client side).
/// \throws WireError on any malformation.
WireResponse decode_response(const std::string& payload);

/// \brief Wraps a payload in a frame (magic + u32 LE length + bytes).
/// \throws WireError when the payload exceeds `kMaxPayloadBytes`.
std::string frame(const std::string& payload);

/// Incremental frame extractor for non-blocking transports.  Feed raw
/// bytes as they arrive; `next` yields complete payloads in order.  A bad
/// magic or oversized length throws `WireError` and poisons the reader
/// (the connection cannot be resynchronized and should be dropped).
class FrameReader {
 public:
  /// Appends raw transport bytes to the internal buffer.
  void feed(const char* data, std::size_t n);

  /// \brief Extracts the next complete payload, if one is buffered.
  /// \param payload  set to the payload bytes on success.
  /// \return true when a payload was extracted; false = need more bytes.
  /// \throws WireError on bad magic / oversized length (reader poisoned).
  bool next(std::string& payload);

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool poisoned_ = false;
};

/// \brief Blocking frame read from a file descriptor.
/// \param fd  readable descriptor (socket or pipe).
/// \param payload  set to the payload bytes on success.
/// \param timeout_ms  per-call cap (< 0 = block forever) enforced with
///        poll(2) across partial reads.
/// \return true on success; false on clean EOF before any frame byte.
/// \throws WireError on malformed frames, truncated frames (EOF mid-frame),
///         timeouts, or read errors.
bool read_frame_fd(int fd, std::string& payload, int timeout_ms = -1);

/// \brief Blocking framed write of `payload` to a file descriptor.
/// \throws WireError on oversized payloads or write errors (EPIPE included
///         — callers that tolerate a vanished peer catch it).
void write_frame_fd(int fd, const std::string& payload);

}  // namespace mrlc::service
