#include "service/server.hpp"

#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "common/budget.hpp"
#include "common/check.hpp"
#include "common/faultpoint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "core/anytime.hpp"
#include "wsn/io.hpp"

namespace mrlc::service {

namespace {

struct ServiceCounters {
  metrics::Counter& requests = metrics::counter("service.requests");
  metrics::Counter& accepted = metrics::counter("service.accepted");
  metrics::Counter& shed_overload = metrics::counter("service.shed_overload");
  metrics::Counter& rejected_draining =
      metrics::counter("service.rejected_draining");
  metrics::Counter& invalid_requests =
      metrics::counter("service.invalid_requests");
  metrics::Counter& completed = metrics::counter("service.completed");
  metrics::Counter& degraded = metrics::counter("service.degraded");
  metrics::Counter& cancelled = metrics::counter("service.cancelled");
  metrics::Counter& infeasible = metrics::counter("service.infeasible");
  metrics::Counter& errors = metrics::counter("service.errors");
  metrics::Counter& batches = metrics::counter("service.batches");
  metrics::Counter& cache_hits = metrics::counter("service.cache_hits");
  metrics::Counter& cache_misses = metrics::counter("service.cache_misses");
  metrics::Counter& cache_evictions =
      metrics::counter("service.cache_evictions");
  metrics::Counter& cache_poisoned =
      metrics::counter("service.cache_poisoned");
  metrics::Gauge& queue_depth_gauge = metrics::gauge("service.queue_depth");
};

/// Static so key registration survives service teardown (stable addresses,
/// and `--metrics-json` flushes see every service.* key even at zero).
ServiceCounters& counters() {
  static ServiceCounters c;
  return c;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

/// One batch slot.  Built at serial prep, solved in the parallel stage,
/// audited and replied at serial finalize — fields note which stage owns
/// them.
struct SolverService::WorkItem {
  // -- prep (serial) --
  WireRequest request;
  ReplyFn reply;
  std::chrono::steady_clock::time_point submitted;
  core::VariantId variant = core::VariantId::kMrlc;  ///< parsed at prep
  std::uint64_t topo = 0;
  core::SubtourCutPool* pool = nullptr;  ///< leased; null = pool-free solve
  bool leased = false;
  bool inject_crash = false;   ///< service.worker_crash fired for this slot
  bool inject_slow = false;    ///< service.slow_request fired for this slot
  bool served_from_cache = false;
  bool skip_solve = false;     ///< cache hit or early invalid
  // -- solve (parallel; owned by exactly one worker) --
  Budget budget;
  std::optional<core::AnytimeResult> result;
  ResponseStatus status = ResponseStatus::kInternalError;
  std::string detail;
  std::string tree_text;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  // -- finalize (serial) --
  WireResponse reply_body;
};

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_pool_sets) {
  counters();  // eager key registration
  if (options_.auto_start) start();
}

SolverService::~SolverService() { drain(); }

std::size_t SolverService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void SolverService::submit(WireRequest request, ReplyFn reply) {
  ServiceCounters& c = counters();
  c.requests.add();
  WireResponse shed;
  shed.id = request.id.empty() ? "-" : request.id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!draining_.load(std::memory_order_relaxed) &&
        queue_.size() < options_.queue_capacity) {
      queue_.push_back(Pending{std::move(request), std::move(reply),
                               std::chrono::steady_clock::now()});
      c.accepted.add();
      c.queue_depth_gauge.set(static_cast<double>(queue_.size()));
      wake_.notify_one();
      return;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      shed.status = ResponseStatus::kRejectedDraining;
      shed.detail = "service is draining; not accepting new requests";
      c.rejected_draining.add();
    } else {
      shed.status = ResponseStatus::kRejectedOverload;
      shed.detail = "admission queue full; retry with backoff";
      c.shed_overload.add();
    }
  }
  reply(shed);
}

void SolverService::submit_payload(const std::string& payload, ReplyFn reply) {
  WireRequest request;
  try {
    request = decode_request(payload);
  } catch (const WireError& e) {
    counters().requests.add();
    counters().invalid_requests.add();
    WireResponse bad;
    bad.id = "-";  // a payload too broken to decode has no usable id
    bad.status = ResponseStatus::kInvalidRequest;
    bad.detail = e.what();
    reply(bad);
    return;
  }
  submit(std::move(request), std::move(reply));
}

void SolverService::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void SolverService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_.store(true, std::memory_order_relaxed);
    // Never started: queued requests (auto_start=false misuse) still get
    // drained below by running the dispatcher loop inline.
    if (!started_) {
      started_ = true;
      dispatcher_ = std::thread([this] { dispatcher_loop(); });
    }
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void SolverService::dispatcher_loop() {
  const int pool_width = static_cast<int>(default_pool().thread_count());
  const int batch_size =
      options_.batch_size > 0 ? options_.batch_size : std::max(1, pool_width);
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) return;  // draining and nothing left
      while (!queue_.empty() &&
             batch.size() < static_cast<std::size_t>(batch_size)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      counters().queue_depth_gauge.set(static_cast<double>(queue_.size()));
    }
    process_batch(batch);
  }
}

void SolverService::process_batch(std::vector<Pending>& batch) {
  ServiceCounters& c = counters();
  c.batches.add();
  const int n = static_cast<int>(batch.size());
  std::vector<std::unique_ptr<WorkItem>> items;
  items.reserve(static_cast<std::size_t>(n));

  // ---- serial prep (admission order): cache lookups, leases, fault
  // arrival decisions.  Everything that must be deterministic across
  // worker thread counts happens here or in finalize.
  const auto prep_time = std::chrono::steady_clock::now();
  for (Pending& pending : batch) {
    auto item = std::make_unique<WorkItem>();
    item->request = std::move(pending.request);
    item->reply = std::move(pending.reply);
    item->submitted = pending.submitted;
    if (options_.record_timings) {
      item->queue_ms = ms_between(item->submitted, prep_time);
    }
    const WireRequest& req = item->request;
    const std::optional<core::VariantId> variant =
        core::variant_from_string(req.variant);
    if (!variant.has_value()) {
      item->skip_solve = true;
      item->status = ResponseStatus::kInvalidRequest;
      item->detail = "unsupported problem variant '" + req.variant + "'";
      items.push_back(std::move(item));
      continue;
    }
    item->variant = *variant;
    item->topo = topology_hash(req.network_text);
    const std::string key =
        WarmCache::result_key(req.variant, req.lifetime, req.budget);
    if (const CachedResult* hit = cache_.find_result(item->topo, key)) {
      item->skip_solve = true;
      item->served_from_cache = true;
      item->status = ResponseStatus::kOk;
      item->detail = "served from result cache";
      item->tree_text = hit->tree_text;
      item->reply_body.cost = hit->cost;
      item->reply_body.reliability = hit->reliability;
      item->reply_body.lifetime = hit->lifetime;
      item->reply_body.gap = hit->gap;
      item->reply_body.has_solution = true;
      item->reply_body.budget_used = hit->budget_used;
      c.cache_hits.add();
      items.push_back(std::move(item));
      continue;
    }
    c.cache_misses.add();
    item->pool = cache_.lease(item->topo, req.variant);
    item->leased = item->pool != nullptr;
    if (req.budget >= 0) item->budget.set_work_limit(req.budget);
    const std::int64_t deadline = req.deadline_ms >= 0
                                      ? req.deadline_ms
                                      : options_.default_deadline_ms;
    if (deadline >= 0) item->budget.set_deadline_ms(deadline);
    // Fault arrivals are decided here (serial, admission order) so an
    // armed `:N` trigger names the same request at any thread count.
    item->inject_crash = fault::fire("service.worker_crash");
    item->inject_slow = fault::fire("service.slow_request");
    items.push_back(std::move(item));
  }

  // ---- parallel solve.  Each worker owns items[i] exclusively; the
  // watchdog try/catch turns any unexpected exception into a typed
  // internal_error reply instead of taking the daemon down.
  default_pool().for_each(n, [&](int i) {
    WorkItem& item = *items[static_cast<std::size_t>(i)];
    if (item.skip_solve) return;
    const auto solve_start = std::chrono::steady_clock::now();
    try {
      if (item.inject_slow) {
        // Injected latency: models a worker stuck on a pathological
        // instance long enough for the admission queue to back up.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        fault::note_recovered("service.slow_request");
      }
      if (item.inject_crash) {
        // Injected worker crash: the watchdog's recovery is cooperative
        // cancellation — the victim's budget is cancelled and the typed
        // `cancelled` reply carries whatever incumbent was seeded.
        item.budget.cancel();
        fault::note_recovered("service.worker_crash");
      }
      const wsn::Network net = wsn::network_from_string(item.request.network_text);
      core::AnytimeOptions options;
      options.ira.shared_pool = item.pool;
      options.budget = &item.budget;
      options.variant = item.variant;
      core::AnytimeResult result =
          core::solve_anytime(net, item.request.lifetime, options);
      switch (result.status) {
        case core::AnytimeStatus::kOptimal:
          item.status = ResponseStatus::kOk;
          break;
        case core::AnytimeStatus::kFeasibleBudgetExhausted:
          item.status = ResponseStatus::kBudgetExhausted;
          break;
        case core::AnytimeStatus::kCancelled:
          item.status = ResponseStatus::kCancelled;
          break;
        case core::AnytimeStatus::kInfeasible:
          item.status = ResponseStatus::kInfeasible;
          break;
      }
      item.detail = result.message;
      if (result.status != core::AnytimeStatus::kInfeasible) {
        item.tree_text = wsn::tree_to_string(result.tree);
      }
      item.result = std::move(result);
    } catch (const std::invalid_argument& e) {
      item.status = ResponseStatus::kInvalidRequest;
      item.detail = e.what();
    } catch (const std::exception& e) {
      item.status = ResponseStatus::kInternalError;
      item.detail = e.what();
    }
    if (options_.record_timings) {
      item.solve_ms =
          ms_between(solve_start, std::chrono::steady_clock::now());
    }
  });

  // ---- serial finalize (admission order): poison audit, result store,
  // metrics, replies.
  static metrics::Histogram& queue_us_hist =
      metrics::histogram("service.queue_us");
  static metrics::Histogram& solve_us_hist =
      metrics::histogram("service.solve_us");
  static metrics::Histogram& request_us_hist =
      metrics::histogram("service.request_us");
  const CacheStats before = cache_.stats();
  for (std::unique_ptr<WorkItem>& item_ptr : items) {
    WorkItem& item = *item_ptr;
    if (item.leased) {
      const bool numerically_suspect =
          item.result.has_value() && item.result->stats.cold_fallbacks > 0;
      const bool injected_poison = fault::fire("service.cache_poison");
      if (numerically_suspect || injected_poison) {
        cache_.quarantine(item.topo);
        if (injected_poison) fault::note_recovered("service.cache_poison");
      } else {
        cache_.release(item.topo, item.request.variant);
      }
    }
    if (!item.served_from_cache && item.status == ResponseStatus::kOk &&
        item.result.has_value()) {
      CachedResult cached;
      cached.tree_text = item.tree_text;
      cached.cost = item.result->cost;
      cached.reliability = item.result->reliability;
      cached.lifetime = item.result->lifetime;
      cached.gap = item.result->gap;
      cached.budget_used = item.budget.used();
      cache_.store_result(item.topo,
                          WarmCache::result_key(item.request.variant,
                                                item.request.lifetime,
                                                item.request.budget),
                          std::move(cached));
    }
    switch (item.status) {
      case ResponseStatus::kOk: c.completed.add(); break;
      case ResponseStatus::kBudgetExhausted: c.degraded.add(); break;
      case ResponseStatus::kCancelled: c.cancelled.add(); break;
      case ResponseStatus::kInfeasible: c.infeasible.add(); break;
      case ResponseStatus::kInvalidRequest: c.invalid_requests.add(); break;
      default: c.errors.add(); break;
    }
    if (options_.record_timings) {
      queue_us_hist.record(static_cast<long long>(item.queue_ms * 1000.0));
      solve_us_hist.record(static_cast<long long>(item.solve_ms * 1000.0));
      request_us_hist.record(
          static_cast<long long>((item.queue_ms + item.solve_ms) * 1000.0));
    }
    item.reply(make_reply(item));
  }
  const CacheStats after = cache_.stats();
  c.cache_evictions.add(after.evictions - before.evictions);
  c.cache_poisoned.add(after.poisoned - before.poisoned);
}

WireResponse SolverService::make_reply(const WorkItem& item) const {
  WireResponse out = item.reply_body;  // cache hits pre-filled the scalars
  out.id = item.request.id;
  out.status = item.status;
  out.detail = item.detail;
  out.tree_text = item.tree_text;
  out.cache = item.served_from_cache
                  ? "hit"
                  : (item.skip_solve ? "none" : "miss");
  out.queue_ms = item.queue_ms;
  out.solve_ms = item.solve_ms;
  if (item.result.has_value()) {
    out.has_solution = item.status != ResponseStatus::kInfeasible &&
                       item.status != ResponseStatus::kInvalidRequest &&
                       item.status != ResponseStatus::kInternalError;
    out.cost = item.result->cost;
    out.reliability = item.result->reliability;
    out.lifetime = item.result->lifetime;
    out.gap = item.result->gap;
    out.budget_used = item.budget.used();
  } else if (item.served_from_cache) {
    out.has_solution = true;
  }
  return out;
}

}  // namespace mrlc::service
