#include "graph/enumeration.hpp"

#include "graph/dsu.hpp"

namespace mrlc::graph {

namespace {

struct Enumerator {
  const Graph& g;
  const std::vector<EdgeId> ids;
  const std::function<bool(const SpanningTree&)>& visit;
  SpanningTree current;
  bool stopped = false;

  Enumerator(const Graph& graph, const std::function<bool(const SpanningTree&)>& v)
      : g(graph), ids(graph.alive_edge_ids()), visit(v) {}

  void recurse(std::size_t index, const DisjointSetUnion& dsu) {
    if (stopped) return;
    const int needed = g.vertex_count() - 1;
    if (static_cast<int>(current.edges.size()) == needed) {
      if (!visit(current)) stopped = true;
      return;
    }
    // Prune: not enough edges left to finish a spanning tree.
    const int remaining = static_cast<int>(ids.size() - index);
    if (static_cast<int>(current.edges.size()) + remaining < needed) return;
    if (index >= ids.size()) return;

    const EdgeId id = ids[index];
    const Edge& e = g.edge(id);

    // Branch 1: take the edge if it joins two components.
    DisjointSetUnion with_edge = dsu;
    if (with_edge.unite(e.u, e.v)) {
      current.edges.push_back(id);
      current.total_weight += e.weight;
      recurse(index + 1, with_edge);
      current.edges.pop_back();
      current.total_weight -= e.weight;
    }
    // Branch 2: skip the edge.
    recurse(index + 1, dsu);
  }
};

}  // namespace

void for_each_spanning_tree(const Graph& g,
                            const std::function<bool(const SpanningTree&)>& visit) {
  if (g.vertex_count() <= 1) {
    // The empty tree spans a 0/1-vertex graph.
    visit(SpanningTree{});
    return;
  }
  Enumerator en(g, visit);
  en.recurse(0, DisjointSetUnion(g.vertex_count()));
}

std::uint64_t count_spanning_trees(const Graph& g, std::uint64_t limit) {
  std::uint64_t count = 0;
  for_each_spanning_tree(g, [&](const SpanningTree&) {
    ++count;
    return count < limit;
  });
  return count;
}

}  // namespace mrlc::graph
