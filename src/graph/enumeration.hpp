#pragma once

/// \file enumeration.hpp
/// \brief Exhaustive spanning-tree enumeration for small graphs.
///
/// Used as ground truth in tests and by the exact MRLC solver
/// (`core/exact.hpp`).  Complexity is combinatorial; callers must keep
/// `edge_count` small (the exact solver guards this).

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"
#include "graph/mst.hpp"

namespace mrlc::graph {

/// Invokes `visit` once per spanning tree of `g` (alive edges only).
/// Enumeration is by depth-first edge selection with connectivity pruning,
/// which is far faster than testing all (n-1)-subsets on sparse graphs.
/// `visit` may return false to stop early.
void for_each_spanning_tree(const Graph& g,
                            const std::function<bool(const SpanningTree&)>& visit);

/// Number of spanning trees (stops counting at `limit` if given).
std::uint64_t count_spanning_trees(const Graph& g,
                                   std::uint64_t limit = UINT64_MAX);

}  // namespace mrlc::graph
