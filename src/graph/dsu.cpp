#include "graph/dsu.hpp"

#include <numeric>

#include "common/check.hpp"

namespace mrlc::graph {

DisjointSetUnion::DisjointSetUnion(int element_count)
    : parent_(static_cast<std::size_t>(element_count)),
      size_(static_cast<std::size_t>(element_count), 1),
      set_count_(element_count) {
  MRLC_REQUIRE(element_count >= 0, "element count must be non-negative");
  std::iota(parent_.begin(), parent_.end(), 0);
}

int DisjointSetUnion::find(int x) {
  MRLC_REQUIRE(x >= 0 && x < static_cast<int>(parent_.size()), "element out of range");
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];  // path halving
    x = p;
  }
  return x;
}

bool DisjointSetUnion::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
    std::swap(a, b);
  }
  parent_[static_cast<std::size_t>(b)] = a;
  size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  --set_count_;
  return true;
}

int DisjointSetUnion::set_size(int x) { return size_[static_cast<std::size_t>(find(x))]; }

}  // namespace mrlc::graph
