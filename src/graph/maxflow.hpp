#pragma once

/// \file maxflow.hpp
/// \brief Dinic maximum-flow on real-valued capacities.
///
/// Used by the subtour-elimination separation oracle (Padberg–Wolsey
/// construction) in `core/separation.hpp`.  Capacities are doubles; a small
/// epsilon treats near-zero residuals as saturated.

#include <vector>

namespace mrlc::graph {

/// Max-flow network builder + Dinic solver.
class MaxFlow {
 public:
  /// \param node_count number of nodes (0-based ids).
  /// \param epsilon residual capacities below this count as zero.
  explicit MaxFlow(int node_count, double epsilon = 1e-9);

  /// Adds a directed arc with the given capacity (>= 0); returns arc index.
  int add_arc(int from, int to, double capacity);

  /// Adds an undirected edge = two opposing arcs each with `capacity`.
  void add_undirected(int a, int b, double capacity);

  /// Computes the maximum flow from `source` to `sink` (destructive on
  /// residual capacities; call once per instance or use `reset`).
  double max_flow(int source, int sink);

  /// After max_flow: vertices on the source side of a minimum cut.
  std::vector<int> min_cut_source_side(int source) const;

  /// Restores all residual capacities to the original values.
  void reset();

  /// Reusable-network mode: replaces the capacity (and the value `reset`
  /// restores) of the `arc_index`-th arc added from `from`, without
  /// touching the accumulated flow elsewhere.  Call before `max_flow`,
  /// typically bracketed by `reset`; together they let one network serve a
  /// whole sweep of single-arc variations (e.g. the Padberg–Wolsey
  /// forced-vertex arcs) without rebuilding.
  void set_arc_capacity(int from, int arc_index, double capacity);

  /// Drops every arc (keeping node allocations where possible) and resizes
  /// to `node_count` nodes, so the instance can host a fresh network
  /// without reallocating adjacency lists.
  void reset_network(int node_count);

 private:
  struct Arc {
    int to;
    int rev;           ///< index of the reverse arc in adj_[to]
    double capacity;   ///< residual capacity
    double original;   ///< capacity as added
  };

  bool build_levels(int source, int sink);
  double push(int v, int sink, double limit);

  int node_count_;
  double epsilon_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace mrlc::graph
