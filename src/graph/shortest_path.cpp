#include "graph/shortest_path.hpp"

#include <limits>
#include <queue>

namespace mrlc::graph {

ShortestPaths dijkstra(const Graph& g, VertexId source,
                       const std::function<double(EdgeId)>& weight) {
  MRLC_REQUIRE(source >= 0 && source < g.vertex_count(), "source out of range");
  const auto n = static_cast<std::size_t>(g.vertex_count());

  ShortestPaths out;
  out.distance.assign(n, std::numeric_limits<double>::infinity());
  out.parent_vertex.assign(n, -1);
  out.parent_edge.assign(n, -1);
  out.distance[static_cast<std::size_t>(source)] = 0.0;
  out.parent_vertex[static_cast<std::size_t>(source)] = source;

  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > out.distance[static_cast<std::size_t>(v)] + 1e-15) continue;  // stale
    for (EdgeId id : g.incident(v)) {
      const double w = weight(id);
      MRLC_REQUIRE(w >= 0.0, "Dijkstra requires non-negative edge lengths");
      const VertexId u = g.edge(id).other(v);
      const double candidate = dist + w;
      if (candidate < out.distance[static_cast<std::size_t>(u)] - 1e-15) {
        out.distance[static_cast<std::size_t>(u)] = candidate;
        out.parent_vertex[static_cast<std::size_t>(u)] = v;
        out.parent_edge[static_cast<std::size_t>(u)] = id;
        heap.emplace(candidate, u);
      }
    }
  }
  return out;
}

ShortestPaths dijkstra(const Graph& g, VertexId source) {
  return dijkstra(g, source, [&](EdgeId id) { return g.edge(id).weight; });
}

}  // namespace mrlc::graph
