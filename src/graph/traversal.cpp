#include "graph/traversal.hpp"

#include <queue>

namespace mrlc::graph {

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(static_cast<std::size_t>(g.vertex_count()), -1);
  for (VertexId start = 0; start < g.vertex_count(); ++start) {
    if (out.label[static_cast<std::size_t>(start)] != -1) continue;
    const int comp = out.count++;
    std::queue<VertexId> frontier;
    frontier.push(start);
    out.label[static_cast<std::size_t>(start)] = comp;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (EdgeId id : g.incident(v)) {
        const VertexId w = g.edge(id).other(v);
        auto& lw = out.label[static_cast<std::size_t>(w)];
        if (lw == -1) {
          lw = comp;
          frontier.push(w);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.vertex_count() <= 1 || connected_components(g).count == 1;
}

BfsTree bfs_tree(const Graph& g, VertexId root) {
  MRLC_REQUIRE(root >= 0 && root < g.vertex_count(), "root out of range");
  BfsTree t;
  const auto n = static_cast<std::size_t>(g.vertex_count());
  t.parent_vertex.assign(n, -1);
  t.parent_edge.assign(n, -1);
  t.depth.assign(n, -1);
  t.parent_vertex[static_cast<std::size_t>(root)] = root;
  t.depth[static_cast<std::size_t>(root)] = 0;
  std::queue<VertexId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (EdgeId id : g.incident(v)) {
      const VertexId w = g.edge(id).other(v);
      if (t.depth[static_cast<std::size_t>(w)] != -1) continue;
      t.depth[static_cast<std::size_t>(w)] = t.depth[static_cast<std::size_t>(v)] + 1;
      t.parent_vertex[static_cast<std::size_t>(w)] = v;
      t.parent_edge[static_cast<std::size_t>(w)] = id;
      frontier.push(w);
    }
  }
  return t;
}

std::vector<VertexId> reachable_without_edge(const Graph& g, VertexId start,
                                             EdgeId blocked_edge) {
  MRLC_REQUIRE(start >= 0 && start < g.vertex_count(), "start out of range");
  std::vector<bool> seen(static_cast<std::size_t>(g.vertex_count()), false);
  std::vector<VertexId> order;
  std::queue<VertexId> frontier;
  frontier.push(start);
  seen[static_cast<std::size_t>(start)] = true;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    order.push_back(v);
    for (EdgeId id : g.incident(v)) {
      if (id == blocked_edge) continue;
      const VertexId w = g.edge(id).other(v);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        frontier.push(w);
      }
    }
  }
  return order;
}

}  // namespace mrlc::graph
