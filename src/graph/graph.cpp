#include "graph/graph.hpp"

#include <algorithm>

namespace mrlc::graph {

Graph::Graph(int vertex_count) : vertex_count_(vertex_count) {
  MRLC_REQUIRE(vertex_count >= 0, "vertex count must be non-negative");
  incident_.resize(static_cast<std::size_t>(vertex_count));
}

EdgeId Graph::add_edge(VertexId u, VertexId v, double weight) {
  MRLC_REQUIRE(u >= 0 && u < vertex_count_, "endpoint u out of range");
  MRLC_REQUIRE(v >= 0 && v < vertex_count_, "endpoint v out of range");
  MRLC_REQUIRE(u != v, "self-loops are not allowed");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  alive_.push_back(true);
  ++alive_count_;
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

void Graph::set_weight(EdgeId id, double weight) {
  MRLC_REQUIRE(id >= 0 && id < edge_count(), "edge id out of range");
  edges_[static_cast<std::size_t>(id)].weight = weight;
}

EdgeId Graph::find_edge(VertexId u, VertexId v) const {
  MRLC_REQUIRE(u >= 0 && u < vertex_count_, "endpoint u out of range");
  MRLC_REQUIRE(v >= 0 && v < vertex_count_, "endpoint v out of range");
  for (EdgeId id : incident(u)) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return id;
  }
  return -1;
}

void Graph::remove_edge(EdgeId id) {
  MRLC_REQUIRE(id >= 0 && id < edge_count(), "edge id out of range");
  if (!alive_[static_cast<std::size_t>(id)]) return;
  alive_[static_cast<std::size_t>(id)] = false;
  --alive_count_;
  const Edge& e = edges_[static_cast<std::size_t>(id)];
  for (VertexId endpoint : {e.u, e.v}) {
    auto& list = incident_[static_cast<std::size_t>(endpoint)];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
}

std::vector<EdgeId> Graph::alive_edge_ids() const {
  std::vector<EdgeId> ids;
  ids.reserve(static_cast<std::size_t>(alive_count_));
  for (EdgeId id = 0; id < edge_count(); ++id) {
    if (alive_[static_cast<std::size_t>(id)]) ids.push_back(id);
  }
  return ids;
}

Graph Graph::filtered(const std::vector<bool>& keep) const {
  MRLC_REQUIRE(keep.size() == edges_.size(), "mask size must equal edge count");
  Graph out = *this;
  for (EdgeId id = 0; id < edge_count(); ++id) {
    if (!keep[static_cast<std::size_t>(id)]) out.remove_edge(id);
  }
  return out;
}


}  // namespace mrlc::graph
