#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.hpp"

namespace mrlc::graph {

MaxFlow::MaxFlow(int node_count, double epsilon)
    : node_count_(node_count),
      epsilon_(epsilon),
      adj_(static_cast<std::size_t>(node_count)) {
  MRLC_REQUIRE(node_count >= 0, "node count must be non-negative");
  MRLC_REQUIRE(epsilon > 0.0, "epsilon must be positive");
}

int MaxFlow::add_arc(int from, int to, double capacity) {
  MRLC_REQUIRE(from >= 0 && from < node_count_, "arc source out of range");
  MRLC_REQUIRE(to >= 0 && to < node_count_, "arc target out of range");
  MRLC_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  auto& fwd_list = adj_[static_cast<std::size_t>(from)];
  auto& rev_list = adj_[static_cast<std::size_t>(to)];
  const int fwd_index = static_cast<int>(fwd_list.size());
  fwd_list.push_back(Arc{to, static_cast<int>(rev_list.size()), capacity, capacity});
  rev_list.push_back(Arc{from, fwd_index, 0.0, 0.0});
  return fwd_index;
}

void MaxFlow::add_undirected(int a, int b, double capacity) {
  // Two opposing arcs; each residual pair shares capacity via the reverse
  // entries created by add_arc, so this models an undirected edge exactly.
  add_arc(a, b, capacity);
  add_arc(b, a, capacity);
}

bool MaxFlow::build_levels(int source, int sink) {
  level_.assign(static_cast<std::size_t>(node_count_), -1);
  std::queue<int> frontier;
  level_[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (const Arc& a : adj_[static_cast<std::size_t>(v)]) {
      if (a.capacity > epsilon_ && level_[static_cast<std::size_t>(a.to)] == -1) {
        level_[static_cast<std::size_t>(a.to)] = level_[static_cast<std::size_t>(v)] + 1;
        frontier.push(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] != -1;
}

double MaxFlow::push(int v, int sink, double limit) {
  if (v == sink || limit <= epsilon_) return limit;
  double sent = 0.0;
  for (auto& i = iter_[static_cast<std::size_t>(v)];
       i < adj_[static_cast<std::size_t>(v)].size(); ++i) {
    Arc& a = adj_[static_cast<std::size_t>(v)][i];
    if (a.capacity <= epsilon_ ||
        level_[static_cast<std::size_t>(a.to)] != level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const double pushed = push(a.to, sink, std::min(limit - sent, a.capacity));
    if (pushed > epsilon_) {
      a.capacity -= pushed;
      adj_[static_cast<std::size_t>(a.to)][static_cast<std::size_t>(a.rev)].capacity +=
          pushed;
      sent += pushed;
      if (limit - sent <= epsilon_) break;
    }
  }
  return sent;
}

double MaxFlow::max_flow(int source, int sink) {
  MRLC_REQUIRE(source >= 0 && source < node_count_, "source out of range");
  MRLC_REQUIRE(sink >= 0 && sink < node_count_, "sink out of range");
  MRLC_REQUIRE(source != sink, "source and sink must differ");
  double total = 0.0;
  while (build_levels(source, sink)) {
    iter_.assign(static_cast<std::size_t>(node_count_), 0);
    double pushed = 0.0;
    do {
      pushed = push(source, sink, std::numeric_limits<double>::infinity());
      total += pushed;
    } while (pushed > epsilon_);
  }
  return total;
}

std::vector<int> MaxFlow::min_cut_source_side(int source) const {
  std::vector<bool> seen(static_cast<std::size_t>(node_count_), false);
  std::vector<int> side;
  std::queue<int> frontier;
  seen[static_cast<std::size_t>(source)] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    side.push_back(v);
    for (const Arc& a : adj_[static_cast<std::size_t>(v)]) {
      if (a.capacity > epsilon_ && !seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = true;
        frontier.push(a.to);
      }
    }
  }
  return side;
}

void MaxFlow::reset() {
  for (auto& list : adj_) {
    for (Arc& a : list) a.capacity = a.original;
  }
}

void MaxFlow::set_arc_capacity(int from, int arc_index, double capacity) {
  MRLC_REQUIRE(from >= 0 && from < node_count_, "arc source out of range");
  auto& list = adj_[static_cast<std::size_t>(from)];
  MRLC_REQUIRE(arc_index >= 0 && arc_index < static_cast<int>(list.size()),
               "arc index out of range");
  MRLC_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  Arc& a = list[static_cast<std::size_t>(arc_index)];
  a.capacity = capacity;
  a.original = capacity;
}

void MaxFlow::reset_network(int node_count) {
  MRLC_REQUIRE(node_count >= 0, "node count must be non-negative");
  if (node_count <= node_count_) {
    adj_.resize(static_cast<std::size_t>(node_count));
    for (auto& list : adj_) list.clear();  // keeps each list's allocation
  } else {
    for (auto& list : adj_) list.clear();
    adj_.resize(static_cast<std::size_t>(node_count));
  }
  node_count_ = node_count;
}

}  // namespace mrlc::graph
