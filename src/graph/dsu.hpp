#pragma once

/// \file dsu.hpp
/// \brief Disjoint-set union (union-find) with path halving + union by size.

#include <vector>

namespace mrlc::graph {

class DisjointSetUnion {
 public:
  explicit DisjointSetUnion(int element_count);

  /// Representative of the set containing `x`.
  int find(int x);

  /// Merges the sets containing `a` and `b`.
  /// \return true if they were in different sets.
  bool unite(int a, int b);

  bool connected(int a, int b) { return find(a) == find(b); }

  /// Number of disjoint sets currently represented.
  int set_count() const noexcept { return set_count_; }

  /// Size of the set containing `x`.
  int set_size(int x);

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int set_count_ = 0;
};

}  // namespace mrlc::graph
