#pragma once

/// \file shortest_path.hpp
/// \brief Dijkstra single-source shortest paths (non-negative weights).
///
/// Used by the ETX shortest-path-tree baseline (`baselines/etx_spt.hpp`):
/// link-quality routing à la ETX/CTP picks, for every node, the path that
/// minimizes the total expected transmission count to the sink.

#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace mrlc::graph {

/// Shortest-path tree from `source`.
/// `distance[v]` is +inf for unreachable vertices; `parent_vertex[source]`
/// is `source` itself and -1 for unreachable vertices.
struct ShortestPaths {
  std::vector<double> distance;
  std::vector<VertexId> parent_vertex;
  std::vector<EdgeId> parent_edge;
};

/// Dijkstra over alive edges using `weight(edge_id)` as the length.
/// \param weight must return a non-negative length for every alive edge
///        (checked; negative lengths throw std::invalid_argument).
ShortestPaths dijkstra(const Graph& g, VertexId source,
                       const std::function<double(EdgeId)>& weight);

/// Convenience overload using the stored edge weights.
ShortestPaths dijkstra(const Graph& g, VertexId source);

}  // namespace mrlc::graph
