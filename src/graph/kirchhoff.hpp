#pragma once

/// \file kirchhoff.hpp
/// \brief Spanning-tree counting via the matrix-tree theorem.
///
/// Kirchhoff's theorem: the number of spanning trees of a multigraph
/// equals any cofactor of its Laplacian.  This gives an O(n^3) count that
/// is completely independent of the backtracking enumeration in
/// `enumeration.hpp` — the two validate each other in the test suite — and
/// it scales to graphs whose trees could never be enumerated (used to
/// report the search-space size of the DFL instance: ~10^12 trees).
///
/// Computed with partial-pivot Gaussian elimination in doubles; exact for
/// counts below ~2^52 and a tight floating-point estimate beyond.

#include "graph/graph.hpp"

namespace mrlc::graph {

/// Number of spanning trees of `g` (alive edges; parallel edges count
/// separately, as they do in enumeration).  Returns 0 for graphs with no
/// spanning tree and 1 for the single-vertex graph.
double count_spanning_trees_kirchhoff(const Graph& g);

}  // namespace mrlc::graph
