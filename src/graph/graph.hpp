#pragma once

/// \file graph.hpp
/// \brief Undirected weighted graph with stable edge identifiers.
///
/// Vertices are dense integers `0 .. vertex_count()-1`.  Edges carry a
/// double weight (the MRLC modules store the link *cost* `-log q_e` there)
/// and keep the identifier they were added with, so algorithm outputs
/// (MST edge sets, LP variables, tree edge sets) can refer to edges by index
/// across graph copies and filtered subgraphs.

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace mrlc::graph {

using VertexId = int;
using EdgeId = int;

/// An undirected edge.  `u < v` is NOT required; both orders are accepted
/// and preserved as given.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0.0;

  /// The endpoint that is not `from`.  Requires `from` to be an endpoint.
  VertexId other(VertexId from) const {
    MRLC_REQUIRE(from == u || from == v, "vertex is not an endpoint of this edge");
    return from == u ? v : u;
  }
};

/// Undirected weighted multigraph (parallel edges allowed, self-loops not).
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `vertex_count` isolated vertices.
  explicit Graph(int vertex_count);

  int vertex_count() const noexcept { return vertex_count_; }
  int edge_count() const noexcept { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge and returns its id.  Rejects self-loops and
  /// out-of-range endpoints.
  EdgeId add_edge(VertexId u, VertexId v, double weight);

  const Edge& edge(EdgeId id) const {
    MRLC_REQUIRE(id >= 0 && id < edge_count(), "edge id out of range");
    return edges_[static_cast<std::size_t>(id)];
  }

  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Edge ids incident to `v`.
  std::span<const EdgeId> incident(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < vertex_count_, "vertex out of range");
    return incident_[static_cast<std::size_t>(v)];
  }

  int degree(VertexId v) const { return static_cast<int>(incident(v).size()); }

  /// Updates an edge weight in place (link quality changes over time in the
  /// distributed protocol simulations).
  void set_weight(EdgeId id, double weight);

  /// Returns the id of an arbitrary edge joining `u` and `v`, or -1.
  EdgeId find_edge(VertexId u, VertexId v) const;

  /// Returns a copy containing only edges with `keep[id]` true.  Vertex set
  /// and *edge ids are preserved*: the result has the same edge ids for the
  /// kept edges and placeholder zero-weight self-records are avoided by
  /// storing an explicit alive mask.  (Implementation: we keep all edge
  /// records but drop dead ones from adjacency; `is_alive` reports status.)
  Graph filtered(const std::vector<bool>& keep) const;

  /// False if the edge was removed by `filtered`/`remove_edge`.
  bool is_alive(EdgeId id) const {
    MRLC_REQUIRE(id >= 0 && id < edge_count(), "edge id out of range");
    return alive_[static_cast<std::size_t>(id)];
  }

  /// Soft-deletes an edge: it disappears from adjacency and `alive_edge_ids`
  /// but keeps its id so external references stay valid.
  void remove_edge(EdgeId id);

  /// Ids of all alive edges.
  std::vector<EdgeId> alive_edge_ids() const;

  int alive_edge_count() const noexcept { return alive_count_; }

 private:
  int vertex_count_ = 0;
  int alive_count_ = 0;
  std::vector<Edge> edges_;
  std::vector<bool> alive_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace mrlc::graph
