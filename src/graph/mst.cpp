#include "graph/mst.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "graph/dsu.hpp"

namespace mrlc::graph {

std::optional<SpanningTree> prim_mst(const Graph& g, VertexId root) {
  MRLC_REQUIRE(root >= 0 && root < g.vertex_count(), "root out of range");
  const int n = g.vertex_count();
  if (n == 0) return SpanningTree{};

  SpanningTree tree;
  tree.edges.reserve(static_cast<std::size_t>(n - 1));
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);

  // (weight, edge id, new vertex) min-heap.
  using Item = std::tuple<double, EdgeId, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  auto push_incident = [&](VertexId v) {
    for (EdgeId id : g.incident(v)) {
      const VertexId w = g.edge(id).other(v);
      if (!in_tree[static_cast<std::size_t>(w)]) {
        heap.emplace(g.edge(id).weight, id, w);
      }
    }
  };

  in_tree[static_cast<std::size_t>(root)] = true;
  push_incident(root);
  int joined = 1;
  while (!heap.empty() && joined < n) {
    const auto [w, id, v] = heap.top();
    heap.pop();
    if (in_tree[static_cast<std::size_t>(v)]) continue;
    in_tree[static_cast<std::size_t>(v)] = true;
    tree.edges.push_back(id);
    tree.total_weight += w;
    ++joined;
    push_incident(v);
  }
  if (joined != n) return std::nullopt;
  return tree;
}

std::optional<SpanningTree> kruskal_mst(const Graph& g) {
  const int n = g.vertex_count();
  if (n == 0) return SpanningTree{};

  std::vector<EdgeId> ids = g.alive_edge_ids();
  std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).weight < g.edge(b).weight;
  });

  SpanningTree tree;
  DisjointSetUnion dsu(n);
  for (EdgeId id : ids) {
    const Edge& e = g.edge(id);
    if (dsu.unite(e.u, e.v)) {
      tree.edges.push_back(id);
      tree.total_weight += e.weight;
      if (static_cast<int>(tree.edges.size()) == n - 1) break;
    }
  }
  if (static_cast<int>(tree.edges.size()) != n - 1) return std::nullopt;
  return tree;
}

}  // namespace mrlc::graph
