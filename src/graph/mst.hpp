#pragma once

/// \file mst.hpp
/// \brief Minimum spanning tree algorithms (Prim, Kruskal).
///
/// Prim's algorithm is also the paper's "MST" baseline (Section VII): the
/// lower bound on the cost of any MRLC-feasible aggregation tree.

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mrlc::graph {

/// A spanning tree given as the set of chosen edge ids plus total weight.
struct SpanningTree {
  std::vector<EdgeId> edges;
  double total_weight = 0.0;
};

/// Prim's algorithm from `root` over alive edges.
/// \return nullopt if the graph is disconnected.
std::optional<SpanningTree> prim_mst(const Graph& g, VertexId root = 0);

/// Kruskal's algorithm over alive edges.
/// \return nullopt if the graph is disconnected.
std::optional<SpanningTree> kruskal_mst(const Graph& g);

}  // namespace mrlc::graph
