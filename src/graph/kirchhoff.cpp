#include "graph/kirchhoff.hpp"

#include <cmath>
#include <vector>

namespace mrlc::graph {

double count_spanning_trees_kirchhoff(const Graph& g) {
  const int n = g.vertex_count();
  if (n <= 1) return 1.0;

  // Laplacian minor: drop the last row/column.
  const int m = n - 1;
  std::vector<double> a(static_cast<std::size_t>(m) * static_cast<std::size_t>(m),
                        0.0);
  auto at = [&](int r, int c) -> double& {
    return a[static_cast<std::size_t>(r) * static_cast<std::size_t>(m) +
             static_cast<std::size_t>(c)];
  };
  for (EdgeId id : g.alive_edge_ids()) {
    const Edge& e = g.edge(id);
    if (e.u < m) at(e.u, e.u) += 1.0;
    if (e.v < m) at(e.v, e.v) += 1.0;
    if (e.u < m && e.v < m) {
      at(e.u, e.v) -= 1.0;
      at(e.v, e.u) -= 1.0;
    }
  }

  // Determinant by partial-pivot Gaussian elimination.
  double det = 1.0;
  for (int col = 0; col < m; ++col) {
    int pivot = col;
    for (int r = col + 1; r < m; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    if (std::abs(at(pivot, col)) < 1e-12) return 0.0;  // singular: disconnected
    if (pivot != col) {
      for (int c = col; c < m; ++c) std::swap(at(pivot, c), at(col, c));
      det = -det;
    }
    det *= at(col, col);
    const double inv = 1.0 / at(col, col);
    for (int r = col + 1; r < m; ++r) {
      const double factor = at(r, col) * inv;
      if (factor == 0.0) continue;
      for (int c = col; c < m; ++c) at(r, c) -= factor * at(col, c);
    }
  }
  // Counts are non-negative by construction; clamp the rounding fuzz.
  return det < 0.0 ? 0.0 : det;
}

}  // namespace mrlc::graph
