#pragma once

/// \file traversal.hpp
/// \brief BFS/DFS based queries: connectivity, components, BFS trees.

#include <vector>

#include "graph/graph.hpp"

namespace mrlc::graph {

/// Component label (0-based, dense) per vertex, plus component count.
struct Components {
  std::vector<int> label;
  int count = 0;
};

/// Connected components over alive edges.
Components connected_components(const Graph& g);

/// True iff all vertices are in a single component (vacuously true for n<=1).
bool is_connected(const Graph& g);

/// BFS parent structure rooted at `root`.
/// `parent_vertex[root] == root`; unreachable vertices get -1.
/// `parent_edge[v]` is the edge id connecting v to its parent (-1 for root /
/// unreachable).
struct BfsTree {
  std::vector<VertexId> parent_vertex;
  std::vector<EdgeId> parent_edge;
  std::vector<int> depth;  ///< -1 for unreachable
};

BfsTree bfs_tree(const Graph& g, VertexId root);

/// Vertices reachable from `start` using alive edges, excluding edges for
/// which `blocked_edge` is the id (pass -1 to block nothing).  Used by the
/// distributed protocol to find the component on one side of a removed
/// tree link.
std::vector<VertexId> reachable_without_edge(const Graph& g, VertexId start,
                                             EdgeId blocked_edge);

}  // namespace mrlc::graph
