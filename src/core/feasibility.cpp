#include "core/feasibility.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "baselines/aaml.hpp"
#include "core/lp_formulation.hpp"
#include "graph/traversal.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

bool lp_lifetime_feasible(const wsn::Network& net, double bound,
                          const IraOptions& options) {
  MRLC_REQUIRE(bound > 0.0, "lifetime bound must be positive");
  net.validate();
  const std::vector<bool> all(static_cast<std::size_t>(net.node_count()), true);
  MrlcLpFormulation formulation(net.topology(),
                                lifetime_degree_caps(net, all, bound));
  CutLoopOptions cut_options;
  cut_options.simplex = options.simplex;
  cut_options.max_rounds = options.max_cut_rounds;
  cut_options.warm_start = options.warm_start;
  const CutLpResult result = solve_with_subtour_cuts(formulation, cut_options);
  MRLC_ENSURE(result.status != lp::SolveStatus::kIterationLimit,
              "LP feasibility probe did not converge");
  return result.status == lp::SolveStatus::kOptimal;
}

double achievable_lifetime_lower_bound(const wsn::Network& net) {
  net.validate();
  baselines::AamlOptions options;
  options.mode = baselines::AamlSearchMode::kLexicographic;
  options.initial = baselines::AamlInitialTree::kBfs;
  return baselines::aaml(net, options).lifetime;
}

LifetimeBracket bracket_max_lifetime(const wsn::Network& net,
                                     double relative_tolerance,
                                     const IraOptions& options) {
  MRLC_REQUIRE(relative_tolerance > 0.0 && relative_tolerance < 1.0,
               "tolerance must lie in (0, 1)");
  net.validate();

  LifetimeBracket bracket;
  bracket.lower = achievable_lifetime_lower_bound(net);

  // No node can outlive its zero-children (sink: one-child) lifetime, so
  // the minimum over nodes caps the whole network.
  double hi = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    const int floor_children = v == net.sink() ? 1 : 0;
    hi = std::min(hi, net.energy_model().node_lifetime(net.initial_energy(v),
                                                       floor_children));
  }

  // The constructive bound is feasible by construction; bisect in
  // (lower, hi].  Loop invariant: `lo` LP-feasible, `hi` LP-infeasible or
  // the initial cap.
  double lo = bracket.lower;
  if (lo >= hi) {  // the constructive tree already attains the cap
    bracket.upper = hi;
    return bracket;
  }
  // The cap itself may be feasible (e.g. a path network); probe it first.
  ++bracket.probes;
  if (lp_lifetime_feasible(net, hi * (1.0 - 1e-12), options)) {
    bracket.upper = hi;
    return bracket;
  }
  while ((hi - lo) / hi > relative_tolerance) {
    const double mid = 0.5 * (lo + hi);
    ++bracket.probes;
    if (lp_lifetime_feasible(net, mid, options)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  bracket.upper = hi;
  return bracket;
}

double lp_lifetime_upper_bound(const wsn::Network& net, double relative_tolerance,
                               const IraOptions& options) {
  return bracket_max_lifetime(net, relative_tolerance, options).upper;
}

}  // namespace mrlc::core
