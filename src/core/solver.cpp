#include "core/solver.hpp"

#include <sstream>

namespace mrlc::core {

SolveReport MrlcSolver::solve(const wsn::Network& net, double lifetime_bound) const {
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");

  SolveReport report;

  // --- 1. Strict mode first: the paper's guarantee. ----------------------
  IraOptions strict_options = options_.ira;
  strict_options.bound_mode = BoundMode::kPaperStrict;
  bool strict_failed = false;
  try {
    report.result = IterativeRelaxation(strict_options).solve(net, lifetime_bound);
    report.mode = SolveMode::kStrict;
  } catch (const InfeasibleError&) {
    strict_failed = true;
  }

  // --- 2. Fall back to the direct relaxation when allowed. ---------------
  if (strict_failed) {
    if (!lp_lifetime_feasible(net, lifetime_bound, options_.ira)) {
      // Truly unachievable: attach the achievable bracket to the error.
      const LifetimeBracket bracket = bracket_max_lifetime(net, 1e-4, options_.ira);
      std::ostringstream os;
      os << "no aggregation tree reaches lifetime " << lifetime_bound
         << "; achievable lifetime is in [" << bracket.lower << ", "
         << bracket.upper << "] rounds";
      throw InfeasibleError(os.str());
    }
    MRLC_ENSURE(options_.allow_direct_fallback,
                "strict mode infeasible, the bound is LP-achievable, and the "
                "direct fallback is disabled");
    IraOptions direct_options = options_.ira;
    direct_options.bound_mode = BoundMode::kDirect;
    report.result = IterativeRelaxation(direct_options).solve(net, lifetime_bound);
    report.mode = SolveMode::kDirectFallback;
  }

  // --- 3. Optional exact certification. -----------------------------------
  // Only meaningful when the returned tree actually meets the bound: a
  // direct-mode tree that violates by up to two children competes in a
  // larger feasible set and can (legitimately) cost less than OPT(LC).
  if (options_.certify_with_exact && report.result.meets_bound) {
    BranchBoundOptions bb;
    bb.max_nodes_explored = options_.certify_node_budget;
    try {
      const auto exact = branch_bound_mrlc(net, lifetime_bound, bb);
      if (exact.has_value()) {
        report.exact_cost = exact->cost;
        report.optimality_gap = report.result.cost - exact->cost;
      }
    } catch (const std::invalid_argument&) {
      // Budget exceeded: leave certification fields empty.
    }
  }

  std::ostringstream os;
  os << (report.mode == SolveMode::kStrict ? "strict Algorithm 1"
                                           : "direct relaxation (fallback)")
     << ": reliability " << report.result.reliability << ", lifetime "
     << report.result.lifetime << " rounds ("
     << (report.result.meets_bound ? "bound met"
                                   : "bound violated within +2 children/node")
     << ")";
  if (report.optimality_gap.has_value()) {
    os << ", optimality gap " << *report.optimality_gap << " nats";
  }
  report.narrative = os.str();
  return report;
}

}  // namespace mrlc::core
