#pragma once

/// \file ira.hpp
/// \brief The Iterative Relaxation Algorithm (Algorithm 1 of the paper) —
/// the centralized solution to the MRLC problem.
///
/// IRA keeps a working copy of the topology and a shrinking set W of
/// lifetime-constrained vertices.  Each iteration solves the LP relaxation
/// LP(G, L', W) to an extreme point, deletes edges whose x_e is zero, and
/// removes from W any vertex whose lifetime constraint can no longer be
/// violated (its support degree is already low enough, Line 8).  Theorem 2
/// guarantees such a vertex exists at a true extreme point; once W is
/// empty the LP degenerates to the Subtour LP, whose extreme points are
/// integral (Lemma 1) — i.e. the answer is the minimum spanning tree of the
/// surviving edges.
///
/// L' = I_min * LC / (I_min - 2 * Rx * LC) is deliberately stricter than LC
/// (about two children of headroom per node), so the relaxation steps never
/// push a node's lifetime below LC.  IRA therefore either (a) proves no
/// aggregation tree with lifetime >= LC exists, or (b) returns one whose
/// cost is at most OPT(L').

#include <optional>

#include "lp/simplex.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

class SubtourCutPool;  // core/separation.hpp

/// Which internal bound the LP's degree rows encode.
enum class BoundMode {
  /// The paper's Line 3: L' = I_min*LC / (I_min - 2*Rx*LC), about two
  /// children of headroom stricter than LC.  Guarantees the returned tree
  /// meets LC, but is undefined/infeasible for aggressive LC (any bound
  /// within two children of the maximum achievable lifetime).  This is the
  /// regime where Theorem 2's token argument holds unconditionally.
  kPaperStrict,
  /// L' = LC: the Singh–Lau-style relaxation.  Cost is at most OPT(LC) and
  /// the lifetime constraint may be violated by up to two children per node
  /// in theory (check `IraResult::meets_bound`; violations are rare in
  /// practice because the extreme points are near-integral).  The paper's
  /// own Fig. 7 constraint levels (up to 2.5x L_AAML) are only expressible
  /// in this mode — see EXPERIMENTS.md.
  kDirect,
};

/// Live progress an IRA solve publishes as it runs, so that a caller that
/// interrupts the solve (budget exhaustion) still has something certified
/// to report.  In `kDirect` mode the first outer iteration's LP optimum is
/// a relaxation of the full problem at bound LC, hence a valid lower bound
/// on OPT(LC); in `kPaperStrict` mode the LP runs at L' > LC and the value
/// bounds OPT(L') instead — the anytime layer only trusts it under kDirect.
struct IraProgress {
  double first_lp_objective = 0.0;
  bool first_lp_valid = false;
};

struct IraOptions {
  BoundMode bound_mode = BoundMode::kPaperStrict;
  /// x_e values at or below this are treated as zero when pruning edges.
  double zero_tolerance = 1e-7;
  /// Cutting-plane rounds per LP solve.
  int max_cut_rounds = 200;
  /// Numerical safety net: when no vertex passes the strict Line-8 test
  /// (cannot happen at an exact extreme point, but can after floating-point
  /// cuts), remove the vertex with the largest lifetime slack instead of
  /// failing.  The result still gets a final lifetime check.
  bool allow_slack_fallback = true;
  /// Reoptimize cut rounds from the previous optimal basis (dual simplex,
  /// `lp::LpInstance`) instead of cold two-phase rebuilds, and share a
  /// subtour cut pool across the outer iterations.  Identical trees and
  /// costs either way (warm starting changes pivot paths, never the
  /// optimum); `false` reproduces the historical cold trajectories exactly
  /// and exists for A/B verification.
  bool warm_start = true;
  lp::SimplexOptions simplex;
  /// Optional caller-owned subtour cut pool shared *across* solves.  By
  /// default each solve keeps a private pool that lives for its outer
  /// iterations only; the solver service passes one pool per cached
  /// topology here so sets separated for one request seed the next
  /// (different LC, same network).  Pooled sets only ever shortcut the
  /// separation *search* — every remembered set is re-verified against the
  /// current fractional point before a row is added — so a warm solve is
  /// exactly as correct as a cold one, but on degenerate LPs it may settle
  /// on a different (equally valid) optimal vertex and hence a different
  /// tree than a pool-free run.  Callers that need byte-reproducibility
  /// against one-shot runs must leave this null (the service result cache
  /// covers exact repeats).
  SubtourCutPool* shared_pool = nullptr;
  /// Optional cooperative budget (not owned), threaded through every LP
  /// pivot and separation max-flow.  When it runs out, `solve` throws
  /// `BudgetExhaustedError` at the next deterministic checkpoint — use the
  /// anytime layer (`core::solve_anytime`) for a non-throwing incumbent +
  /// bound interface.  Null means unlimited and leaves the solve
  /// bit-identical to a budget-free run.
  Budget* budget = nullptr;
  /// Optional progress sink (not owned): written as milestones complete so
  /// an interrupted solve still yields a certified dual bound.
  IraProgress* progress = nullptr;
};

struct IraStats {
  int outer_iterations = 0;
  int lp_solves = 0;
  long long simplex_iterations = 0;
  int cuts_added = 0;
  int edges_removed = 0;
  int constraints_removed = 0;
  /// Warm-start attempts that abandoned their basis for a cold rebuild —
  /// a numerical-trouble signal (the service cache quarantines entries
  /// whose solve reported any).
  long long cold_fallbacks = 0;
  bool used_fallback = false;
};

struct IraResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;           ///< achieved network lifetime (rounds)
  double strict_bound = 0.0;       ///< the L' used internally
  bool meets_bound = false;        ///< lifetime >= LC (always true unless the
                                   ///< numerical fallback fired)
  IraStats stats;
};

class IterativeRelaxation {
 public:
  explicit IterativeRelaxation(IraOptions options = {}) : options_(options) {}

  /// \brief Solves MRLC on `net` with lifetime threshold `lifetime_bound`.
  /// \param net  validated, connected network instance.
  /// \param lifetime_bound  the required network lifetime LC, in rounds
  ///        (> 0).
  /// \return the constructed tree with its cost/reliability/lifetime and
  ///         per-solve statistics; check `meets_bound` in kDirect mode.
  /// \throws InfeasibleError when no aggregation tree with lifetime >= LC
  ///         exists (LP infeasible), when the topology is disconnected, or
  ///         when LC is too aggressive for the paper's L' construction
  ///         (I_min - 2*Rx*LC <= 0, which makes L' meaningless).
  IraResult solve(const wsn::Network& net, double lifetime_bound) const;

  /// \brief The strict internal bound L' (Line 3 of Algorithm 1); exposed
  /// for tests and benchmarks.
  /// \param net  the network whose minimum initial energy defines I_min.
  /// \param lifetime_bound  the user-facing LC, in rounds (> 0).
  /// \return L' = I_min * LC / (I_min - 2 * Rx * LC), always > LC.
  /// \throws InfeasibleError when I_min - 2*Rx*LC <= 0 (L' undefined).
  static double strict_bound(const wsn::Network& net, double lifetime_bound);

 private:
  IraOptions options_;
};

}  // namespace mrlc::core
