#include "core/exact.hpp"

#include <limits>

#include "graph/enumeration.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

namespace {

/// Shared enumeration: keeps the best tree under `better`, where `better`
/// sees (candidate tree, candidate cost, candidate lifetime).
template <typename Better>
std::optional<ExactResult> enumerate_best(const wsn::Network& net,
                                          std::uint64_t max_trees, Better better) {
  net.validate();
  std::optional<ExactResult> best;
  std::uint64_t examined = 0;
  bool budget_exceeded = false;

  graph::for_each_spanning_tree(net.topology(), [&](const graph::SpanningTree& st) {
    if (++examined > max_trees) {
      budget_exceeded = true;
      return false;
    }
    auto tree = wsn::AggregationTree::from_edges(net, st.edges);
    const double cost = st.total_weight;
    const double lifetime = wsn::network_lifetime(net, tree);
    if (better(cost, lifetime, best)) {
      best = ExactResult{std::move(tree), cost, 0.0, lifetime, 0};
    }
    return true;
  });

  MRLC_REQUIRE(!budget_exceeded,
               "instance has too many spanning trees for exhaustive search");
  if (best.has_value()) {
    best->trees_examined = examined;
    best->reliability = wsn::tree_reliability(net, best->tree);
  }
  return best;
}

}  // namespace

std::optional<ExactResult> exact_mrlc(const wsn::Network& net, double lifetime_bound,
                                      std::uint64_t max_trees) {
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  return enumerate_best(
      net, max_trees,
      [&](double cost, double lifetime, const std::optional<ExactResult>& best) {
        if (lifetime < lifetime_bound) return false;
        return !best.has_value() || cost < best->cost;
      });
}

std::optional<ExactResult> exact_max_lifetime(const wsn::Network& net,
                                              std::uint64_t max_trees) {
  return enumerate_best(
      net, max_trees,
      [&](double cost, double lifetime, const std::optional<ExactResult>& best) {
        if (!best.has_value()) return true;
        if (lifetime != best->lifetime) return lifetime > best->lifetime;
        return cost < best->cost;  // tie-break toward cheaper trees
      });
}

}  // namespace mrlc::core
