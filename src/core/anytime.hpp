#pragma once

/// \file anytime.hpp
/// \brief Deadline-aware anytime front end over the IRA solver.
///
/// `IterativeRelaxation::solve` is all-or-nothing: it either converges or
/// throws.  Production callers with a latency budget need the opposite
/// contract — *always* return the best tree found so far, say how good it
/// is, and never turn "ran out of time" into an exception.  This layer
/// provides that:
///
/// 1. **Incumbent first.**  Before any LP work, a cheap feasible tree is
///    seeded from the degree-capped greedy baseline and the plain MST
///    (whichever meets the bound at lower cost), so even a budget of zero
///    work units yields a usable answer.
/// 2. **Cooperative interruption.**  The shared `Budget` token is threaded
///    through every pivot, max-flow, and outer iteration; exhaustion
///    surfaces as `BudgetExhaustedError` at a deterministic checkpoint and
///    is caught here.
/// 3. **Certified gap.**  The first outer iteration's LP optimum (captured
///    via `IraProgress`, valid because the run is forced into kDirect mode
///    where the LP relaxes the problem at LC itself) is a lower bound on
///    OPT(LC); link costs -ln q are nonnegative, so 0 is a valid fallback
///    bound and the reported gap is always finite.
///
/// Budget exhaustion, infeasibility, and cancellation all come back as a
/// typed `AnytimeStatus` — the only exceptions that escape are genuine
/// precondition violations and internal logic errors.

#include <string>

#include "common/budget.hpp"
#include "core/ira.hpp"
#include "core/variant.hpp"

namespace mrlc::core {

enum class AnytimeStatus {
  /// The IRA run converged; `tree` is its output and the gap is certified.
  kOptimal,
  /// The budget ran out; `tree` is the best incumbent with a finite
  /// certified gap.  Check `meets_bound` (false only when no seeded or
  /// discovered tree satisfied LC, e.g. greedy needed cap relaxations).
  kFeasibleBudgetExhausted,
  /// No aggregation tree with lifetime >= LC exists; no tree is returned.
  kInfeasible,
  /// `Budget::cancel()` was observed; otherwise like budget exhaustion.
  kCancelled,
};

/// \return stable lower-case identifier ("optimal", "feasible_budget_
/// exhausted", "infeasible", "cancelled") for logs and CLI output.
const char* to_string(AnytimeStatus status) noexcept;

struct AnytimeResult {
  AnytimeStatus status = AnytimeStatus::kInfeasible;
  /// The problem variant this result answers (echoes the option).
  VariantId variant = VariantId::kMrlc;
  /// Best tree found (incumbent or IRA output); meaningless when
  /// `status == kInfeasible`.
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  /// The solved variant's objective of `tree` (== `cost` for mrlc).
  double objective = 0.0;
  bool meets_bound = false;
  /// Certified bound on the variant optimum, in objective units.  For the
  /// minimizing variants: a lower bound — the first completed LP round's
  /// optimum when one completed, else 0 (valid since edge costs are >= 0).
  /// For max_lifetime: an *upper* bound — the LP-certified top rung when
  /// the scan completed, else the ladder maximum I_max/Tx.
  double dual_bound = 0.0;
  /// |objective - dual_bound| clamped at >= 0; finite whenever a tree is
  /// returned.  0 does NOT imply proven optimality (the dual bound is a
  /// relaxation), but small gaps certify near-optimality.
  double gap = 0.0;
  /// True when `tree` is the greedy/MST incumbent rather than IRA output.
  bool from_incumbent = false;
  /// IRA statistics for whatever portion of the solve ran.
  IraStats stats;
  /// One-line human-readable outcome (why the run stopped).
  std::string message;
};

struct AnytimeOptions {
  /// Inner IRA configuration.  `bound_mode` is forced to kDirect — the
  /// strict mode's first LP runs at L' > LC, whose optimum does not bound
  /// OPT(LC), so it cannot certify an anytime gap.  `budget`/`progress`
  /// are managed by the anytime layer.
  IraOptions ira;
  /// Cooperative budget (not owned); null runs to completion.
  Budget* budget = nullptr;
  /// Which problem to solve.  kMrlc keeps the historical code path
  /// bit-identically; the other variants route through `solve_variant`
  /// with variant-appropriate incumbents (MST under the variant's costs,
  /// degree-capped greedy for etx, lexicographic AAML for max_lifetime)
  /// and report the certified gap in the variant's objective units.
  VariantId variant = VariantId::kMrlc;
};

/// \brief Solves MRLC with anytime semantics (see file comment).
/// \param net  validated, connected network instance.
/// \param lifetime_bound  required network lifetime LC, in rounds (> 0).
/// \param options  inner IRA knobs plus the budget token.
/// \return typed status, best tree + metrics, certified dual bound/gap.
/// \throws std::invalid_argument / std::logic_error for broken
///         preconditions or internal invariants only — never for budget
///         exhaustion or infeasible instances.
AnytimeResult solve_anytime(const wsn::Network& net, double lifetime_bound,
                            const AnytimeOptions& options = {});

}  // namespace mrlc::core
