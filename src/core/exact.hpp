#pragma once

/// \file exact.hpp
/// \brief Exact MRLC solver by exhaustive spanning-tree enumeration.
///
/// MRLC is NP-complete, so this is only usable for small instances; it
/// exists as ground truth for tests (IRA's cost must be sandwiched between
/// the LC-optimal and the L'-optimal cost) and for the ablation benches.

#include <cstdint>
#include <optional>

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

struct ExactResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  std::uint64_t trees_examined = 0;
};

/// \brief Minimum-cost aggregation tree with lifetime >= `lifetime_bound`,
/// by enumerating every spanning tree.
/// \param net  the network instance.
/// \param lifetime_bound  required network lifetime LC, in rounds.
/// \param max_trees  enumeration budget.
/// \return the optimal tree, or nullopt when no spanning tree satisfies
///         the bound.
/// \throws std::invalid_argument when the instance exceeds `max_trees`
///         spanning trees (refuses to silently run forever).
std::optional<ExactResult> exact_mrlc(const wsn::Network& net, double lifetime_bound,
                                      std::uint64_t max_trees = 50'000'000);

/// \brief Maximum achievable network lifetime over all spanning trees
/// (ground truth for the AAML baseline tests).
/// \param net  the network instance.
/// \param max_trees  enumeration budget.
/// \return the lifetime-maximizing tree, or nullopt for disconnected
///         inputs.
/// \throws std::invalid_argument when the instance exceeds `max_trees`.
std::optional<ExactResult> exact_max_lifetime(const wsn::Network& net,
                                              std::uint64_t max_trees = 50'000'000);

}  // namespace mrlc::core
