#pragma once

/// \file feasibility.hpp
/// \brief Lifetime feasibility probing: "what is the longest lifetime any
/// aggregation tree of this network can guarantee?"
///
/// Deployments need this before picking an LC for the MRLC solve: asking
/// IRA for an unachievable bound just returns InfeasibleError.  Because the
/// exact question (does a spanning tree with the per-node children caps
/// exist?) is itself NP-hard in general, the module brackets the answer:
///
/// * `lp_lifetime_upper_bound` — binary search over the LP relaxation
///   LP(G, LC, V).  If the LP is infeasible at LC, no tree achieves LC
///   (the LP is a relaxation), so the search limit is a true upper bound.
/// * `achievable_lifetime_lower_bound` — the lifetime of a concrete tree
///   built by the strongest AAML variant (lexicographic balancing), which
///   any caller can actually deploy.
///
/// The true maximum lies in [lower, upper]; on the instances in this
/// repository the bracket is tight (see tests/feasibility_test.cpp).

#include "core/ira.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

/// \brief LP feasibility of a lifetime bound.
/// \param net  the network instance.
/// \param bound  candidate lifetime, in rounds; degree caps are taken
///        directly at `bound` (no L' tightening).
/// \param options  simplex/cut settings forwarded to the LP solve.
/// \return true iff LP(G, bound, V) has a fractional solution; a `false`
///         answer proves no aggregation tree of lifetime >= `bound` exists.
bool lp_lifetime_feasible(const wsn::Network& net, double bound,
                          const IraOptions& options = {});

struct LifetimeBracket {
  double lower = 0.0;   ///< achieved by a concrete tree (deployable now)
  double upper = 0.0;   ///< LP-certified: nothing above this is possible
  int probes = 0;       ///< LP feasibility solves spent
};

/// \brief Brackets the maximum achievable network lifetime.
/// \param net  the network instance.
/// \param relative_tolerance stop when (upper-lower)/upper of the *search
///        interval* falls below this (the returned bracket may still be
///        wider if the LP bound and the constructive bound disagree).
/// \param options  simplex/cut settings forwarded to the LP probes.
/// \return [lower, upper] bracket plus the number of LP probes spent.
LifetimeBracket bracket_max_lifetime(const wsn::Network& net,
                                     double relative_tolerance = 1e-4,
                                     const IraOptions& options = {});

/// \brief Upper bound alone (binary search over the LP relaxation).
/// \return an LP-certified lifetime no spanning tree can exceed.
double lp_lifetime_upper_bound(const wsn::Network& net,
                               double relative_tolerance = 1e-4,
                               const IraOptions& options = {});

/// \brief Lower bound alone.
/// \return the lifetime of the lexicographic-AAML tree — achieved by a
///         concrete, deployable tree.
double achievable_lifetime_lower_bound(const wsn::Network& net);

}  // namespace mrlc::core
