#pragma once

/// \file feasibility.hpp
/// \brief Lifetime feasibility probing: "what is the longest lifetime any
/// aggregation tree of this network can guarantee?"
///
/// Deployments need this before picking an LC for the MRLC solve: asking
/// IRA for an unachievable bound just returns InfeasibleError.  Because the
/// exact question (does a spanning tree with the per-node children caps
/// exist?) is itself NP-hard in general, the module brackets the answer:
///
/// * `lp_lifetime_upper_bound` — binary search over the LP relaxation
///   LP(G, LC, V).  If the LP is infeasible at LC, no tree achieves LC
///   (the LP is a relaxation), so the search limit is a true upper bound.
/// * `achievable_lifetime_lower_bound` — the lifetime of a concrete tree
///   built by the strongest AAML variant (lexicographic balancing), which
///   any caller can actually deploy.
///
/// The true maximum lies in [lower, upper]; on the instances in this
/// repository the bracket is tight (see tests/feasibility_test.cpp).

#include "core/ira.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

/// True iff LP(G, bound, V) — degree caps taken directly at `bound` — has
/// a fractional solution.  A `false` answer proves no aggregation tree of
/// lifetime >= `bound` exists.
bool lp_lifetime_feasible(const wsn::Network& net, double bound,
                          const IraOptions& options = {});

struct LifetimeBracket {
  double lower = 0.0;   ///< achieved by a concrete tree (deployable now)
  double upper = 0.0;   ///< LP-certified: nothing above this is possible
  int probes = 0;       ///< LP feasibility solves spent
};

/// Brackets the maximum achievable network lifetime.
/// \param relative_tolerance stop when (upper-lower)/upper of the *search
///        interval* falls below this (the returned bracket may still be
///        wider if the LP bound and the constructive bound disagree).
LifetimeBracket bracket_max_lifetime(const wsn::Network& net,
                                     double relative_tolerance = 1e-4,
                                     const IraOptions& options = {});

/// Upper bound alone (binary search over the LP relaxation).
double lp_lifetime_upper_bound(const wsn::Network& net,
                               double relative_tolerance = 1e-4,
                               const IraOptions& options = {});

/// Lower bound alone (lifetime of the lexicographic-AAML tree).
double achievable_lifetime_lower_bound(const wsn::Network& net);

}  // namespace mrlc::core
