#pragma once

/// \file variant.hpp
/// \brief The problem-definition interface: MRLC and its sibling problems
/// as pluggable variants over one iterative-relaxation engine.
///
/// Every solver mode in this repository is "minimize a per-edge objective
/// over spanning trees subject to per-vertex (possibly weighted) degree
/// rows" — only the objective coefficients, the rows, and the feasibility
/// predicate differ.  `ProblemVariant` captures exactly those degrees of
/// freedom so the IRA loop, the cutting-plane machinery, branch-and-bound,
/// the anytime layer, and the solver service can be shared verbatim:
///
/// | id            | objective (min)        | degree rows              |
/// |---------------|------------------------|--------------------------|
/// | `mrlc`        | Σ -ln q_e              | children caps at L'/LC   |
/// | `etx`         | Σ 1/q_e  (ETX)         | energy-per-delivered-    |
/// |               |                        | packet budgets I(v)/LC   |
/// | `min_energy`  | Σ (Tx+Rx)/q_e          | none (pure MST-as-LP)    |
/// | `max_lifetime`| -L(T)  (maximize)      | probed: caps at candidate|
/// |               |                        | lifetimes                |
///
/// * `mrlc` is the paper's problem (Algorithm 1); routed through this
///   interface it is **bit-identical** to the historical solver — trees,
///   costs, and every `ira.*`/`simplex.*` counter (gated in ci.sh).
/// * `etx` closes the loop with the ARQ data plane: with retransmit-until-
///   delivered links the expected per-round transmission count of a tree is
///   Σ 1/q_e, and a node's energy per *delivered* packet is (Tx or Rx)/q_e,
///   so the lifetime rows become the conservative weighted budgets of
///   `retx_aware_ira` (each edge charged its worst role).
/// * `min_energy` is the minimum-energy aggregation tree of Kuo, Lin and
///   Tsai (arXiv:1402.6457): minimize expected total radio energy per
///   round, (Tx+Rx)/q_e per link under ARQ.  With no lifetime rows the LP
///   is the Subtour LP, whose extreme points are integral (Lemma 1), so
///   one certified LP round reduces the problem to an MST — which the
///   brute-force battery cross-checks.
/// * `max_lifetime` is the maximum-lifetime convergecast of John et al.
///   (arXiv:1910.09793), reusing the lifetime-feasibility machinery as the
///   objective: tree lifetimes only take the discrete values
///   I(v)/(Tx + Rx·k), so the solver scans the candidate ladder with LP
///   feasibility probes (upper certificate) and direct-mode IRA solves
///   (constructive trees), with the lexicographic-AAML tree as a fallback.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ira.hpp"
#include "core/lp_formulation.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

/// First-class solver modes.  Values are stable (wire + metrics gauge).
enum class VariantId {
  kMrlc = 0,
  kEtx = 1,
  kMinEnergy = 2,
  kMaxLifetime = 3,
};

/// Stable lower-case identifier ("mrlc", "etx", "min_energy",
/// "max_lifetime") used on the wire, in CLI flags, and in metric names.
const char* to_string(VariantId id) noexcept;

/// Parses the identifiers accepted by `to_string`; nullopt for anything
/// else (callers own the error message).
std::optional<VariantId> variant_from_string(std::string_view name) noexcept;

/// All four variants in declaration order (for sweeps and registration).
const std::vector<VariantId>& all_variants();

/// The discrete ladder of achievable tree lifetimes, sorted ascending and
/// deduplicated: a tree's lifetime is I(v)/(Tx + Rx*k) for its bottleneck
/// node v with k children, so only these n*n values can occur.  Shared by
/// the max_lifetime scan, its branch-and-bound cross-check, and tests.
std::vector<double> lifetime_candidates(const wsn::Network& net);

/// Conservative per-(vertex, edge) energy rate in joules per round at PRR
/// q_e: the sink only ever receives (exact Rx/q), a non-sink node is
/// charged the sender role Tx/q on every incident edge (an upper bound,
/// since Rx < Tx).  This is the row coefficient of the etx variant and of
/// `retx_aware_ira`, shared with branch-and-bound and the test battery.
double conservative_energy_rate(const wsn::Network& net, graph::VertexId v,
                                graph::EdgeId e);

/// The per-vertex LP degree rows of one outer iteration: for each vertex
/// either a cap on the (weighted) incident-edge sum or nullopt when the
/// vertex is unconstrained.  A null `row_weight` means unit coefficients
/// (the paper's plain degree rows).
struct DegreeBounds {
  std::vector<std::optional<double>> caps;
  MrlcLpFormulation::RowWeight row_weight;
};

/// One problem definition.  Implementations are stateless singletons (get
/// them via `problem_variant` / `mrlc_variant`); every hook must be pure so
/// solves stay deterministic and thread-safe.
class ProblemVariant {
 public:
  virtual ~ProblemVariant() = default;

  virtual VariantId id() const noexcept = 0;
  const char* name() const noexcept { return to_string(id()); }

  /// True when larger objective values are better (max_lifetime).  The
  /// relaxation engine always *minimizes* edge costs; a maximizing variant
  /// supplies its own solve strategy (see `solve_variant`).
  virtual bool maximizing() const noexcept { return false; }

  /// One-line optimality-certificate note: what the returned tree's
  /// objective is provably related to (docs, CLI reports).
  virtual const char* certificate() const noexcept = 0;

  // -- objective ----------------------------------------------------------

  /// Objective coefficient of edge `e` (also the weight tier of the final
  /// MST).  Must be finite and >= 0 for every valid PRR, and non-increasing
  /// in the link's PRR (pinned by tests/property_test.cpp).
  virtual double edge_cost(const wsn::Network& net, graph::EdgeId e) const = 0;

  /// The variant's objective value of a concrete tree (natural sign: a
  /// maximizing variant reports the quantity it maximizes).
  virtual double tree_objective(const wsn::Network& net,
                                const wsn::AggregationTree& tree) const = 0;

  // -- bounds -------------------------------------------------------------

  /// The bound the LP rows encode, derived from the user-facing bound
  /// (mrlc paper-strict tightens LC to L'; every other variant uses the
  /// requested bound directly).  May throw InfeasibleError.
  virtual double internal_bound(const wsn::Network& /*net*/,
                                double requested) const {
    return requested;
  }

  /// False when the variant has no per-vertex rows at all (min_energy):
  /// the engine then runs exactly one certified LP round before the MST.
  virtual bool constrained_at_start() const noexcept { return true; }

  /// Degree rows for the constrained set W at `internal_bound`.
  virtual DegreeBounds bounds(const wsn::Network& net,
                              const std::vector<bool>& constrained,
                              double internal_bound) const = 0;

  /// Line-8 test: may v's row be dropped given the surviving support?
  virtual bool row_removable(const wsn::Network& net,
                             const graph::Graph& working, graph::VertexId v,
                             double requested) const = 0;

  /// Slack ordering for the numerical fallback (largest slack drops first).
  virtual double removal_slack(const wsn::Network& net,
                               const graph::Graph& working, graph::VertexId v,
                               double requested) const = 0;

  // -- feasibility --------------------------------------------------------

  /// The metric of a tree that the user-facing bound constrains (plain
  /// Eq. 1 lifetime for mrlc/min_energy/max_lifetime, retransmission-aware
  /// lifetime for etx).
  virtual double bound_metric(const wsn::Network& net,
                              const wsn::AggregationTree& tree) const = 0;

  /// Feasibility predicate the returned tree is checked against.
  bool tree_feasible(const wsn::Network& net, const wsn::AggregationTree& tree,
                     double requested) const {
    return bound_metric(net, tree) >= requested * (1.0 - 1e-12);
  }

  // -- engine policy ------------------------------------------------------

  /// Whether the shared loop bumps the `ira.*` metrics and the per-variant
  /// solve counter.  The internal retx-mrlc adapter opts out to keep the
  /// historical `retx_aware_ira` metric documents unchanged.
  virtual bool emit_ira_metrics() const noexcept { return true; }

  /// Diagnostics (exact historical wording is part of the mrlc contract).
  virtual std::string infeasible_message(double requested,
                                         double internal) const = 0;
  virtual std::string interrupted_message(int outer_iterations,
                                          int lp_solves) const = 0;
  virtual const char* checkpoint_message() const noexcept = 0;
  virtual const char* disconnected_message() const noexcept = 0;
  virtual const char* fallback_disabled_message() const noexcept = 0;
  virtual const char* lp_failed_message() const noexcept = 0;
};

/// Singleton accessor.  `kMrlc` resolves to the *direct* bound mode (the
/// mode every variant-facing surface uses); the paper-strict instance is
/// reachable via `mrlc_variant(BoundMode::kPaperStrict)`.
const ProblemVariant& problem_variant(VariantId id);

/// The mrlc variant with an explicit bound mode (IRA owns the default).
const ProblemVariant& mrlc_variant(BoundMode mode);

/// Internal adapter used by `retx_aware_ira`: the mrlc objective (-ln q)
/// under the etx energy rows.  Not a first-class VariantId; exposed so the
/// historical API keeps its exact behaviour while sharing the engine.
const ProblemVariant& retx_mrlc_variant();

/// Outcome of a variant solve.  `cost`/`reliability`/`lifetime` keep the
/// paper's plain metrics for cross-variant comparability; `objective` and
/// `bound_metric` are the variant's own.
struct VariantResult {
  VariantId variant = VariantId::kMrlc;
  wsn::AggregationTree tree;
  double objective = 0.0;      ///< variant objective of the tree
  double cost = 0.0;           ///< Σ -ln q (paper cost, all variants)
  double reliability = 0.0;    ///< Q(T)
  double lifetime = 0.0;       ///< plain Eq. 1 lifetime (rounds)
  double bound_metric = 0.0;   ///< metric checked against the bound
  /// mrlc: the internal L'; max_lifetime: the LP-certified upper bound on
  /// any tree's lifetime (the optimality certificate); others: the bound.
  double internal_bound = 0.0;
  bool meets_bound = false;
  IraStats stats;
};

/// \brief Runs the shared iterative-relaxation engine for `variant`.
/// Exposed for the parity battery; `solve_variant` is the front door.
VariantResult run_variant_ira(const ProblemVariant& variant,
                              const wsn::Network& net, double requested_bound,
                              const IraOptions& options);

/// \brief Solves `net` under the given problem variant.
/// \param id  which problem to solve.
/// \param net  validated, connected network instance.
/// \param bound  user-facing lifetime bound, in rounds (> 0).  For
///        `max_lifetime` this is a floor: the solve maximizes the lifetime
///        and reports infeasible only when even the maximum is below it.
///        For `min_energy` it is advisory (reported via `meets_bound`).
/// \param options  IRA knobs; `bound_mode` is honoured for mrlc only.
/// \throws InfeasibleError / BudgetExhaustedError as the plain IRA does.
VariantResult solve_variant(VariantId id, const wsn::Network& net,
                            double bound, const IraOptions& options = {});

}  // namespace mrlc::core
