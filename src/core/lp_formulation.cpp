#include "core/lp_formulation.hpp"

#include <optional>
#include <string>
#include <vector>

#include "common/faultpoint.hpp"
#include "common/trace.hpp"
#include "core/separation.hpp"
#include "lp/instance.hpp"

namespace mrlc::core {

MrlcLpFormulation::MrlcLpFormulation(const graph::Graph& working,
                                     std::vector<std::optional<double>> degree_caps,
                                     RowWeight row_weight)
    : working_(working) {
  const int n = working.vertex_count();
  MRLC_REQUIRE(static_cast<int>(degree_caps.size()) == n,
               "one (optional) degree cap per vertex");

  variable_of_edge_.assign(static_cast<std::size_t>(working.edge_count()), -1);
  for (graph::EdgeId id : working.alive_edge_ids()) {
    const int var = model_.add_variable(working.edge(id).weight, 0.0, 1.0,
                                        "x_e" + std::to_string(id));
    variable_of_edge_[static_cast<std::size_t>(id)] = var;
    variables_.push_back(id);
  }

  // (14): x(E(V)) = |V| - 1.
  const lp::RowId total = model_.add_constraint(lp::Relation::kEqual,
                                                static_cast<double>(n - 1), "span");
  for (int var = 0; var < variable_count(); ++var) model_.add_term(total, var, 1.0);

  // (15) as (possibly weighted) degree rows: sum_e w(v,e) x_e <= cap(v).
  for (graph::VertexId v = 0; v < n; ++v) {
    const auto& cap = degree_caps[static_cast<std::size_t>(v)];
    if (!cap.has_value()) continue;
    // With unit weights a cap of n-1 can never bind; weighted rows have no
    // such shortcut.
    if (!row_weight && *cap >= static_cast<double>(n - 1)) continue;
    const lp::RowId row = model_.add_constraint(lp::Relation::kLessEqual, *cap,
                                                "deg_v" + std::to_string(v));
    for (graph::EdgeId id : working.incident(v)) {
      const int var = variable_of_edge_[static_cast<std::size_t>(id)];
      MRLC_ENSURE(var != -1, "incident edge of an alive vertex must be alive");
      model_.add_term(row, var, row_weight ? row_weight(v, id) : 1.0);
    }
  }
}

void MrlcLpFormulation::add_subtour_row(const std::vector<graph::VertexId>& subset) {
  MRLC_REQUIRE(subset.size() >= 2, "subtour rows need |S| >= 2");
  std::vector<bool> in_set(static_cast<std::size_t>(working_.vertex_count()), false);
  for (graph::VertexId v : subset) {
    MRLC_REQUIRE(v >= 0 && v < working_.vertex_count(), "subset vertex out of range");
    MRLC_REQUIRE(!in_set[static_cast<std::size_t>(v)], "subset has duplicates");
    in_set[static_cast<std::size_t>(v)] = true;
  }
  const lp::RowId row = model_.add_constraint(
      lp::Relation::kLessEqual, static_cast<double>(subset.size()) - 1.0, "subtour");
  for (int var = 0; var < variable_count(); ++var) {
    const graph::Edge& e = working_.edge(variables_[static_cast<std::size_t>(var)]);
    if (in_set[static_cast<std::size_t>(e.u)] && in_set[static_cast<std::size_t>(e.v)]) {
      model_.add_term(row, var, 1.0);
    }
  }
}

std::vector<double> MrlcLpFormulation::edge_values(
    const std::vector<double>& variable_values) const {
  MRLC_REQUIRE(static_cast<int>(variable_values.size()) == variable_count(),
               "value vector has wrong dimension");
  std::vector<double> out(static_cast<std::size_t>(working_.edge_count()), 0.0);
  for (int var = 0; var < variable_count(); ++var) {
    out[static_cast<std::size_t>(variables_[static_cast<std::size_t>(var)])] =
        variable_values[static_cast<std::size_t>(var)];
  }
  return out;
}

CutLpResult solve_with_subtour_cuts(MrlcLpFormulation& formulation,
                                    const CutLoopOptions& options) {
  MRLC_REQUIRE(options.max_rounds >= 1, "need at least one round");
  trace::ScopedPhase phase("cut_lp");
  CutLpResult out;
  lp::SimplexOptions simplex = options.simplex;
  if (options.budget != nullptr) simplex.budget = options.budget;
  std::optional<lp::LpInstance> instance;
  instance.emplace(formulation.model(), simplex);
  auto finish = [&]() {
    out.warm_solves = static_cast<int>(instance->warm_solves());
    out.cold_fallbacks = static_cast<int>(instance->cold_fallbacks());
    return out;
  };

  // The solve trajectory so far: for every LP solved, the model row count
  // it saw and whether it went through the warm path.  This is the recovery
  // script for the basis fault points: the MRLC degree/cut LPs are heavily
  // degenerate, so a cold re-solve over the full model may legally land on
  // a *different* optimal vertex and steer the remaining cut rounds toward
  // a different (equally optimal) tree.  Replaying the recorded trajectory
  // on a fresh instance instead reconstructs the exact basis that was
  // lost, so a recovered run is guaranteed to finish with the same tree as
  // a clean one.
  struct Step {
    int rows;   ///< model rows visible to this solve
    bool warm;  ///< went through sync_new_rows + resolve
  };
  std::vector<Step> trajectory;
  const auto replay_trajectory = [&]() {
    instance.emplace(formulation.model(), trajectory.front().rows, simplex);
    lp::SolveStatus status = lp::SolveStatus::kOptimal;
    for (const Step& step : trajectory) {
      instance->sync_new_rows(step.rows);
      const lp::Solution s = (step.warm && instance->has_basis())
                                 ? instance->resolve()
                                 : instance->solve();
      status = s.status;
      if (status != lp::SolveStatus::kOptimal) break;
    }
    return status;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    // Deterministic checkpoint: a budget that ran out inside the previous
    // round's separation sweep stops the loop here, before the next solve.
    if (options.budget != nullptr && options.budget->exhausted()) {
      out.status = lp::SolveStatus::kInterrupted;
      return finish();
    }
    lp::Solution sol;
    if (options.warm_start && instance->has_basis()) {
      // Fault points: the retained basis is lost between rounds
      // (`lp.drop_basis`), or the warm reoptimization must be abandoned
      // before its first pivot (`lp.force_cold`).  Both recover by
      // deterministic replay (see `trajectory` above); the recovery is
      // audited only after the replay actually restored an optimal basis.
      const bool dropped = fault::fire("lp.drop_basis");
      const bool forced = fault::fire("lp.force_cold");
      if (dropped || forced) {
        const lp::SolveStatus replayed = replay_trajectory();
        if (replayed != lp::SolveStatus::kOptimal) {
          // Only a budget interrupt can stop a replay of previously optimal
          // solves; surface it like any other interrupted round.
          out.status = replayed;
          return finish();
        }
        if (dropped) fault::note_recovered("lp.drop_basis");
        if (forced) fault::note_recovered("lp.force_cold");
      }
      instance->sync_new_rows();
      sol = instance->resolve();
      trajectory.push_back({formulation.model().constraint_count(), true});
    } else {
      // Round 0, warm starting disabled, or the basis was invalidated: the
      // cold path reads the full model, so nothing can be out of sync.
      sol = instance->solve();
      trajectory.push_back({formulation.model().constraint_count(), false});
    }
    ++out.lp_solves;
    out.simplex_iterations += sol.iterations;
    out.status = sol.status;
    if (sol.status != lp::SolveStatus::kOptimal) return finish();

    out.objective = sol.objective;
    out.has_objective = true;
    out.edge_values = formulation.edge_values(sol.values);

    const auto violated = find_violated_subtours(
        formulation.working_graph(), out.edge_values, 1e-6,
        options.separation_mode, options.pool, options.budget);
    if (violated.empty()) {
      // An empty sweep normally certifies "no violated subtour"; under an
      // exhausted budget it may merely mean the sweep was cut short, so the
      // optimum cannot be trusted as fully separated.
      if (options.budget != nullptr && options.budget->exhausted()) {
        out.status = lp::SolveStatus::kInterrupted;
      }
      return finish();
    }
    for (const auto& subset : violated) {
      formulation.add_subtour_row(subset);
      ++out.cuts_added;
    }
  }
  // Separation did not converge within the round budget — report as an
  // iteration limit so the caller can distinguish it from infeasibility.
  out.status = lp::SolveStatus::kIterationLimit;
  return finish();
}

CutLpResult solve_with_subtour_cuts(MrlcLpFormulation& formulation,
                                    const lp::SimplexSolver& solver, int max_rounds,
                                    SeparationMode separation_mode) {
  CutLoopOptions options;
  options.simplex = solver.options();
  options.max_rounds = max_rounds;
  options.separation_mode = separation_mode;
  return solve_with_subtour_cuts(formulation, options);
}

std::vector<std::optional<double>> lifetime_degree_caps(
    const wsn::Network& net, const std::vector<bool>& constrained, double bound) {
  MRLC_REQUIRE(static_cast<int>(constrained.size()) == net.node_count(),
               "one flag per node");
  MRLC_REQUIRE(bound > 0.0, "lifetime bound must be positive");
  std::vector<std::optional<double>> caps(static_cast<std::size_t>(net.node_count()));
  for (graph::VertexId v = 0; v < net.node_count(); ++v) {
    if (!constrained[static_cast<std::size_t>(v)]) continue;
    const double children = net.max_children_real(v, bound);
    const double cap = v == net.sink() ? children : children + 1.0;
    caps[static_cast<std::size_t>(v)] = cap;
  }
  return caps;
}

}  // namespace mrlc::core
