#pragma once

/// \file lp_formulation.hpp
/// \brief The LP(G, L', W) relaxation of the MRLC problem (Section IV-C).
///
///   min  sum_e c_e x_e
///   s.t. x_e >= 0                                   (12)
///        x(E(S)) <= |S| - 1       for all S ⊆ V     (13)  [row generation]
///        x(E(V))  = |V| - 1                         (14)
///        lifetime(v) >= L'        for all v in W    (15)
///
/// Constraint (15) is linear in disguise: the lifetime of v depends only on
/// its children count, and in any orientation away from the sink a non-sink
/// vertex has children = degree - 1 (the sink has children = degree), so
/// (15) becomes the degree row  x(δ(v)) <= cap(v, L').
///
/// The exponentially many subtour rows (13) are generated lazily: the
/// formulation starts with (12), (14), (15) and the x_e <= 1 bounds (the
/// S = {u, v} cases of (13)), then `SubtourLpSolver` alternates simplex
/// solves with the separation oracle until no violated subtour row remains.

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "lp/model.hpp"
#include "core/separation.hpp"
#include "lp/simplex.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

/// A subtour-eliminated LP over the alive edges of a working graph.
///
/// Variables are indexed densely (0..alive_edges-1); `edge_of_variable`
/// maps back to graph edge ids.  The degree caps are supplied by the caller
/// (IRA computes them from L'; plain MST-as-LP passes no caps).
class MrlcLpFormulation {
 public:
  /// Per-(vertex, edge) coefficient of the degree rows.  The default
  /// (nullptr) is the paper's plain degree row (coefficient 1); the
  /// retransmission-aware extension passes energy rates like Tx/q_e so
  /// the row becomes a weighted energy budget.
  using RowWeight = std::function<double(graph::VertexId, graph::EdgeId)>;

  /// \param working     the (possibly edge-filtered) network topology; edge
  ///                    weights are the link costs.
  /// \param degree_caps for each vertex either a cap on the (weighted)
  ///                    incident sum or nullopt when the vertex is
  ///                    unconstrained (not in W).  With unit weights, caps
  ///                    at least |V|-1 are dropped as redundant.
  MrlcLpFormulation(const graph::Graph& working,
                    std::vector<std::optional<double>> degree_caps,
                    RowWeight row_weight = nullptr);

  lp::Model& model() noexcept { return model_; }
  const lp::Model& model() const noexcept { return model_; }

  int variable_count() const noexcept { return static_cast<int>(variables_.size()); }
  graph::EdgeId edge_of_variable(int var) const {
    MRLC_REQUIRE(var >= 0 && var < variable_count(), "variable out of range");
    return variables_[static_cast<std::size_t>(var)];
  }

  /// \brief Adds the subtour row x(E(S)) <= |S| - 1 for vertex set
  /// `subset` (2 <= |subset| < |V|, no duplicates).
  void add_subtour_row(const std::vector<graph::VertexId>& subset);

  /// \brief Expands an LP solution to per-edge values.
  /// \param variable_values  dense per-variable solution from the simplex.
  /// \return per-edge-id values (zero for dead edges), sized to the working
  ///         graph's edge count.
  std::vector<double> edge_values(const std::vector<double>& variable_values) const;

  const graph::Graph& working_graph() const noexcept { return working_; }

 private:
  const graph::Graph& working_;
  lp::Model model_;
  std::vector<graph::EdgeId> variables_;   ///< variable -> edge id
  std::vector<int> variable_of_edge_;      ///< edge id -> variable (-1 dead)
};

/// Result of a cutting-plane solve.
struct CutLpResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;
  /// True once at least one cut round reached a simplex optimum; then
  /// `objective` holds the optimum of the *last completed* round.  Every
  /// completed round solves a relaxation of the fully-cut LP, so on
  /// interruption that value is still a valid lower bound on it — this is
  /// what the anytime layer reports as the dual bound.
  bool has_objective = false;
  /// Per edge-id value of x (size = edge_count of the working graph).
  std::vector<double> edge_values;
  int cuts_added = 0;
  int lp_solves = 0;
  int simplex_iterations = 0;  ///< total pivots across all solves
  int warm_solves = 0;         ///< solves served by the dual-simplex restart
  int cold_fallbacks = 0;      ///< warm attempts abandoned for a cold solve
};

/// Knobs of the cutting-plane loop.
struct CutLoopOptions {
  lp::SimplexOptions simplex;
  /// Cutting-plane round budget.
  int max_rounds = 200;
  /// kHeuristicOnly skips the exact max-flow sweep — cheaper rounds but
  /// possibly-subtour-violating results (ablation knob).
  SeparationMode separation_mode = SeparationMode::kExact;
  /// Reoptimize after cut rounds with `lp::LpInstance::resolve` (dual
  /// simplex from the previous optimal basis) instead of a cold two-phase
  /// rebuild.  Identical results either way — warm starting changes the
  /// pivot path, never the optimum — so `false` exists for A/B tests and
  /// as a belt-and-braces escape hatch.
  bool warm_start = true;
  /// Optional cross-call cut memory (see `SubtourCutPool`); pass the same
  /// pool across the outer iterations of one IRA solve so sets discovered
  /// under earlier degree caps are rechecked for free later.
  SubtourCutPool* pool = nullptr;
  /// Optional cooperative budget (not owned).  Threaded into the simplex
  /// (one unit per pivot) and the separation sweep (one unit per max-flow);
  /// when it runs out the loop stops at the next deterministic checkpoint
  /// and reports `kInterrupted`.  Overrides `simplex.budget`.
  Budget* budget = nullptr;
};

/// \brief Alternates simplex solves with subtour separation until the
/// extreme point satisfies every subtour constraint (or infeasibility is
/// proven).  Round 0 solves cold; subsequent rounds append the violated
/// rows to the persistent `lp::LpInstance` and warm-start from the previous
/// basis (unless `warm_start` is off).
/// \param formulation  the LP; violated subtour rows are appended to it.
/// \param options  simplex options, round budget, separation/warm knobs.
/// \return status, objective, per-edge solution, and solve statistics.
CutLpResult solve_with_subtour_cuts(MrlcLpFormulation& formulation,
                                    const CutLoopOptions& options);

/// Legacy convenience overload: `solver` supplies the simplex options; the
/// loop itself runs through a fresh warm-started `lp::LpInstance`.
CutLpResult solve_with_subtour_cuts(MrlcLpFormulation& formulation,
                                    const lp::SimplexSolver& solver,
                                    int max_rounds = 200,
                                    SeparationMode separation_mode =
                                        SeparationMode::kExact);

/// \brief Computes the degree caps encoding "lifetime(v) >= bound".
/// \param net  the network (supplies energies and the sink id).
/// \param constrained  per-vertex membership in W; unconstrained vertices
///        get nullopt entries.
/// \param bound  the lifetime bound the caps must guarantee.
/// \return per-vertex caps: cap(v) = max_children(v, bound) + 1 for
///         non-sink vertices, or max_children for the sink.
std::vector<std::optional<double>> lifetime_degree_caps(
    const wsn::Network& net, const std::vector<bool>& constrained, double bound);

}  // namespace mrlc::core
