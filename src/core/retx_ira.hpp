#pragma once

/// \file retx_ira.hpp
/// \brief Retransmission-aware MRLC — the extension the paper's motivation
/// section points at but leaves open.
///
/// Section III-A argues that with an ETX retransmit-until-delivered policy
/// nodes "spend 90% of energy in retransmission"; the paper then *disables*
/// retransmissions and maximizes the delivery probability instead.  The
/// complementary deployment — one that keeps retransmissions because every
/// reading must arrive — needs the dual problem: choose the tree that
/// maximizes reliability-per-attempt while budgeting the *retransmission-
/// aware* energy rate
///
///     rate(v) = Tx / q(parent edge) + sum_children Rx / q(child edge),
///
/// i.e. `wsn::network_lifetime_retx(T) >= LC`.
///
/// Unlike Eq. 1 this is no longer a pure children bound — it depends on
/// *which* incident links the tree uses — but it is still linear in the
/// edge indicators, so the same iterative relaxation machinery applies
/// with weighted degree rows.  Because the LP cannot know which incident
/// edge becomes the parent, each edge is charged its worst role,
/// `max(Tx, Rx) / q_e`; that makes the formulation *conservative*: any
/// returned tree is guaranteed to meet LC under the exact asymmetric rate
/// (verified per-instance before returning), at the price of declaring
/// some borderline-feasible instances infeasible.

#include "core/ira.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

struct RetxIraResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime_retx = 0.0;  ///< exact asymmetric retx lifetime (rounds)
  bool meets_bound = false;
  IraStats stats;
};

/// \brief Minimum-cost tree whose retransmission-aware lifetime is >= LC
/// (conservative LP; see file comment).
/// \param net  the network instance.
/// \param lifetime_bound  required retransmission-aware lifetime, rounds.
/// \param options  IRA knobs; bound_mode is ignored (caps are direct).
/// \return the tree with its exact asymmetric retx lifetime; `meets_bound`
///         records the final per-instance verification.
/// \throws InfeasibleError when the conservative LP has no solution or the
///         topology is disconnected.
RetxIraResult retx_aware_ira(const wsn::Network& net, double lifetime_bound,
                             const IraOptions& options = {});

}  // namespace mrlc::core
