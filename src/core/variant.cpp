#include "core/variant.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "baselines/aaml.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/feasibility.hpp"
#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

const char* to_string(VariantId id) noexcept {
  switch (id) {
    case VariantId::kMrlc:
      return "mrlc";
    case VariantId::kEtx:
      return "etx";
    case VariantId::kMinEnergy:
      return "min_energy";
    case VariantId::kMaxLifetime:
      return "max_lifetime";
  }
  return "unknown";
}

std::optional<VariantId> variant_from_string(std::string_view name) noexcept {
  if (name == "mrlc") return VariantId::kMrlc;
  if (name == "etx") return VariantId::kEtx;
  if (name == "min_energy") return VariantId::kMinEnergy;
  if (name == "max_lifetime") return VariantId::kMaxLifetime;
  return std::nullopt;
}

const std::vector<VariantId>& all_variants() {
  static const std::vector<VariantId> kAll = {
      VariantId::kMrlc, VariantId::kEtx, VariantId::kMinEnergy,
      VariantId::kMaxLifetime};
  return kAll;
}

double conservative_energy_rate(const wsn::Network& net, graph::VertexId v,
                                graph::EdgeId e) {
  const double per_packet = v == net.sink() ? net.energy_model().rx_joules
                                            : net.energy_model().tx_joules;
  return per_packet / net.link_prr(e);
}

namespace {

/// Lifetime of v if EVERY remaining support edge incident to it became a
/// tree edge — the paper's E*(L(v)) of Line 8.  Non-sink vertices spend one
/// incident edge on their parent.
double worst_case_lifetime(const wsn::Network& net, const graph::Graph& working,
                           graph::VertexId v) {
  const int support_degree = working.degree(v);
  const int children =
      v == net.sink() ? support_degree : std::max(0, support_degree - 1);
  return net.energy_model().node_lifetime(net.initial_energy(v), children);
}

/// Worst-case conservative rate of v over its remaining support edges.
double worst_case_rate(const wsn::Network& net, const graph::Graph& working,
                       graph::VertexId v) {
  double rate = 0.0;
  for (graph::EdgeId e : working.incident(v)) {
    rate += conservative_energy_rate(net, v, e);
  }
  return rate;
}

/// Per-node energy budget in joules per round at lifetime `bound`.
double energy_budget(const wsn::Network& net, graph::VertexId v, double bound) {
  return net.initial_energy(v) / bound;
}

class MrlcVariant final : public ProblemVariant {
 public:
  explicit MrlcVariant(BoundMode mode) : mode_(mode) {}

  VariantId id() const noexcept override { return VariantId::kMrlc; }

  const char* certificate() const noexcept override {
    return "cost <= OPT(L') with lifetime >= LC (paper-strict), or "
           "cost <= OPT(LC) with <= 2 extra children per node (direct)";
  }

  double edge_cost(const wsn::Network& net, graph::EdgeId e) const override {
    return net.link_cost(e);
  }

  double tree_objective(const wsn::Network& net,
                        const wsn::AggregationTree& tree) const override {
    return wsn::tree_cost(net, tree);
  }

  double internal_bound(const wsn::Network& net,
                        double requested) const override {
    return mode_ == BoundMode::kPaperStrict
               ? IterativeRelaxation::strict_bound(net, requested)
               : requested;
  }

  DegreeBounds bounds(const wsn::Network& net,
                      const std::vector<bool>& constrained,
                      double internal_bound) const override {
    return {lifetime_degree_caps(net, constrained, internal_bound), nullptr};
  }

  /// Mode-dependent Line-8 test: may v's lifetime row be dropped?
  ///
  /// * Paper-strict mode: drop when even taking every support edge keeps
  ///   the lifetime at LC — sound because the LP ran with the stricter L'.
  /// * Direct mode: the Singh–Lau rule — drop when the support degree is
  ///   within 2 of the LC degree cap.  Theorem 2's token argument
  ///   guarantees such a vertex exists at a fractional extreme point, and
  ///   it bounds the final violation by two children per node.
  bool row_removable(const wsn::Network& net, const graph::Graph& working,
                     graph::VertexId v, double requested) const override {
    if (mode_ == BoundMode::kPaperStrict) {
      return worst_case_lifetime(net, working, v) >= requested;
    }
    const double children_cap = net.max_children_real(v, requested);
    const double degree_cap =
        v == net.sink() ? children_cap : children_cap + 1.0;
    return static_cast<double>(working.degree(v)) <= degree_cap + 2.0 + 1e-9;
  }

  double removal_slack(const wsn::Network& net, const graph::Graph& working,
                       graph::VertexId v, double requested) const override {
    return worst_case_lifetime(net, working, v) - requested;
  }

  double bound_metric(const wsn::Network& net,
                      const wsn::AggregationTree& tree) const override {
    return wsn::network_lifetime(net, tree);
  }

  std::string infeasible_message(double requested,
                                 double internal) const override {
    std::ostringstream os;
    os << "no data aggregation tree with lifetime >= " << requested
       << " exists (LP(G, L', W) infeasible with L' = " << internal << ")";
    return os.str();
  }

  std::string interrupted_message(int outer_iterations,
                                  int lp_solves) const override {
    std::ostringstream os;
    os << "budget exhausted inside the cutting-plane loop (outer iteration "
       << outer_iterations << ", after " << lp_solves << " LP solves)";
    return os.str();
  }

  const char* checkpoint_message() const noexcept override {
    return "budget exhausted between IRA outer iterations";
  }

  const char* disconnected_message() const noexcept override {
    return "edge pruning disconnected the working graph (should not happen: "
           "the LP keeps x(E(V)) = n-1 over the support)";
  }

  const char* fallback_disabled_message() const noexcept override {
    return "no removable lifetime constraint found (numerical degeneracy) "
           "and the slack fallback is disabled";
  }

  const char* lp_failed_message() const noexcept override {
    return "LP solve failed to converge";
  }

 private:
  BoundMode mode_;
};

/// Shared row logic of the two energy-budget variants (etx and the
/// retx-mrlc adapter): weighted conservative energy rows at budget
/// I(v)/LC, removal only when even the full support fits outright (the +2
/// token slack of the plain algorithm does not port to weighted rows).
class EnergyRowsBase : public ProblemVariant {
 public:
  DegreeBounds bounds(const wsn::Network& net,
                      const std::vector<bool>& constrained,
                      double internal_bound) const override {
    const int n = net.node_count();
    std::vector<std::optional<double>> caps(static_cast<std::size_t>(n));
    for (graph::VertexId v = 0; v < n; ++v) {
      if (constrained[static_cast<std::size_t>(v)]) {
        caps[static_cast<std::size_t>(v)] =
            energy_budget(net, v, internal_bound);
      }
    }
    return {std::move(caps), [&net](graph::VertexId v, graph::EdgeId e) {
              return conservative_energy_rate(net, v, e);
            }};
  }

  bool row_removable(const wsn::Network& net, const graph::Graph& working,
                     graph::VertexId v, double requested) const override {
    return worst_case_rate(net, working, v) <=
           energy_budget(net, v, requested) + 1e-15;
  }

  double removal_slack(const wsn::Network& net, const graph::Graph& working,
                       graph::VertexId v, double requested) const override {
    return energy_budget(net, v, requested) - worst_case_rate(net, working, v);
  }

  double bound_metric(const wsn::Network& net,
                      const wsn::AggregationTree& tree) const override {
    return wsn::network_lifetime_retx(net, tree);
  }
};

class EtxVariant final : public EnergyRowsBase {
 public:
  VariantId id() const noexcept override { return VariantId::kEtx; }

  const char* certificate() const noexcept override {
    return "expected transmissions <= OPT over trees satisfying the "
           "conservative energy-per-delivered-packet rows at LC";
  }

  double edge_cost(const wsn::Network& net, graph::EdgeId e) const override {
    return 1.0 / net.link_prr(e);
  }

  double tree_objective(const wsn::Network& net,
                        const wsn::AggregationTree& tree) const override {
    double etx = 0.0;
    for (graph::EdgeId e : tree.edge_ids()) {
      etx += 1.0 / net.link_prr(e);
    }
    return etx;
  }

  std::string infeasible_message(double requested,
                                 double /*internal*/) const override {
    std::ostringstream os;
    os << "no aggregation tree meets the retransmission-aware lifetime "
       << requested << " under the conservative energy rows";
    return os.str();
  }

  std::string interrupted_message(int outer_iterations,
                                  int lp_solves) const override {
    std::ostringstream os;
    os << "budget exhausted inside the etx cutting-plane loop (outer "
          "iteration "
       << outer_iterations << ", after " << lp_solves << " LP solves)";
    return os.str();
  }

  const char* checkpoint_message() const noexcept override {
    return "budget exhausted between etx-IRA outer iterations";
  }

  const char* disconnected_message() const noexcept override {
    return "edge pruning disconnected the etx support";
  }

  const char* fallback_disabled_message() const noexcept override {
    return "no removable etx energy constraint and the fallback is disabled";
  }

  const char* lp_failed_message() const noexcept override {
    return "etx LP failed to converge";
  }
};

/// The historical `retx_aware_ira`: mrlc objective under the etx rows.
class RetxMrlcVariant final : public EnergyRowsBase {
 public:
  /// Identifies as mrlc so the engine keeps the native -ln q edge weights
  /// (no reweighting pass — objective bits stay identical).
  VariantId id() const noexcept override { return VariantId::kMrlc; }

  bool emit_ira_metrics() const noexcept override { return false; }

  const char* certificate() const noexcept override {
    return "cost <= OPT over trees satisfying the conservative "
           "retransmission-aware energy rows at LC";
  }

  double edge_cost(const wsn::Network& net, graph::EdgeId e) const override {
    return net.link_cost(e);
  }

  double tree_objective(const wsn::Network& net,
                        const wsn::AggregationTree& tree) const override {
    return wsn::tree_cost(net, tree);
  }

  std::string infeasible_message(double requested,
                                 double /*internal*/) const override {
    std::ostringstream os;
    os << "no aggregation tree meets the retransmission-aware lifetime "
       << requested << " under the conservative energy rows";
    return os.str();
  }

  std::string interrupted_message(int outer_iterations,
                                  int /*lp_solves*/) const override {
    std::ostringstream os;
    os << "budget exhausted inside the retx-aware cutting-plane loop "
       << "(outer iteration " << outer_iterations << ")";
    return os.str();
  }

  const char* checkpoint_message() const noexcept override {
    return "budget exhausted between retx-IRA outer iterations";
  }

  const char* disconnected_message() const noexcept override {
    return "edge pruning disconnected the retx-aware support";
  }

  const char* fallback_disabled_message() const noexcept override {
    return "no removable retx-lifetime constraint and the fallback is "
           "disabled";
  }

  const char* lp_failed_message() const noexcept override {
    return "retx-aware LP failed to converge";
  }
};

class MinEnergyVariant final : public ProblemVariant {
 public:
  VariantId id() const noexcept override { return VariantId::kMinEnergy; }

  const char* certificate() const noexcept override {
    return "exact optimum: one certified Subtour-LP round (integral extreme "
           "points, Lemma 1) == the MST under expected-energy weights";
  }

  double edge_cost(const wsn::Network& net, graph::EdgeId e) const override {
    const auto& energy = net.energy_model();
    return (energy.tx_joules + energy.rx_joules) / net.link_prr(e);
  }

  double tree_objective(const wsn::Network& net,
                        const wsn::AggregationTree& tree) const override {
    double joules = 0.0;
    for (graph::EdgeId e : tree.edge_ids()) {
      joules += edge_cost(net, e);
    }
    return joules;
  }

  bool constrained_at_start() const noexcept override { return false; }

  DegreeBounds bounds(const wsn::Network& net,
                      const std::vector<bool>& /*constrained*/,
                      double /*internal_bound*/) const override {
    return {std::vector<std::optional<double>>(
                static_cast<std::size_t>(net.node_count())),
            nullptr};
  }

  bool row_removable(const wsn::Network&, const graph::Graph&, graph::VertexId,
                     double) const override {
    return true;  // no rows exist; never reached
  }

  double removal_slack(const wsn::Network&, const graph::Graph&,
                       graph::VertexId, double) const override {
    return 0.0;  // no rows exist; never reached
  }

  double bound_metric(const wsn::Network& net,
                      const wsn::AggregationTree& tree) const override {
    return wsn::network_lifetime(net, tree);
  }

  std::string infeasible_message(double /*requested*/,
                                 double /*internal*/) const override {
    return "min-energy Subtour LP infeasible (disconnected topology)";
  }

  std::string interrupted_message(int outer_iterations,
                                  int lp_solves) const override {
    std::ostringstream os;
    os << "budget exhausted inside the min-energy cutting-plane loop (outer "
          "iteration "
       << outer_iterations << ", after " << lp_solves << " LP solves)";
    return os.str();
  }

  const char* checkpoint_message() const noexcept override {
    return "budget exhausted before the min-energy LP round";
  }

  const char* disconnected_message() const noexcept override {
    return "edge pruning disconnected the min-energy support";
  }

  const char* fallback_disabled_message() const noexcept override {
    return "min-energy variant has no removable rows";  // unreachable
  }

  const char* lp_failed_message() const noexcept override {
    return "min-energy LP failed to converge";
  }
};

class MaxLifetimeVariant final : public ProblemVariant {
 public:
  VariantId id() const noexcept override { return VariantId::kMaxLifetime; }

  bool maximizing() const noexcept override { return true; }

  const char* certificate() const noexcept override {
    return "achieved lifetime <= LP-certified upper bound over the discrete "
           "candidate ladder I(v)/(Tx + Rx*k); equal when the scan closes";
  }

  /// Tie-break objective among equal-lifetime trees: the paper's cost.
  double edge_cost(const wsn::Network& net, graph::EdgeId e) const override {
    return net.link_cost(e);
  }

  double tree_objective(const wsn::Network& net,
                        const wsn::AggregationTree& tree) const override {
    return wsn::network_lifetime(net, tree);
  }

  DegreeBounds bounds(const wsn::Network& net,
                      const std::vector<bool>& constrained,
                      double internal_bound) const override {
    return {lifetime_degree_caps(net, constrained, internal_bound), nullptr};
  }

  bool row_removable(const wsn::Network& net, const graph::Graph& working,
                     graph::VertexId v, double requested) const override {
    const double children_cap = net.max_children_real(v, requested);
    const double degree_cap =
        v == net.sink() ? children_cap : children_cap + 1.0;
    return static_cast<double>(working.degree(v)) <= degree_cap + 2.0 + 1e-9;
  }

  double removal_slack(const wsn::Network& net, const graph::Graph& working,
                       graph::VertexId v, double requested) const override {
    return worst_case_lifetime(net, working, v) - requested;
  }

  double bound_metric(const wsn::Network& net,
                      const wsn::AggregationTree& tree) const override {
    return wsn::network_lifetime(net, tree);
  }

  std::string infeasible_message(double requested,
                                 double internal) const override {
    std::ostringstream os;
    os << "maximum achievable lifetime is LP-certified below the requested "
          "floor "
       << requested << " (upper bound " << internal << ")";
    return os.str();
  }

  std::string interrupted_message(int outer_iterations,
                                  int lp_solves) const override {
    std::ostringstream os;
    os << "budget exhausted inside the max-lifetime scan (outer iteration "
       << outer_iterations << ", after " << lp_solves << " LP solves)";
    return os.str();
  }

  const char* checkpoint_message() const noexcept override {
    return "budget exhausted between max-lifetime candidate probes";
  }

  const char* disconnected_message() const noexcept override {
    return "edge pruning disconnected the max-lifetime support";
  }

  const char* fallback_disabled_message() const noexcept override {
    return "no removable lifetime constraint in the max-lifetime probe and "
           "the fallback is disabled";
  }

  const char* lp_failed_message() const noexcept override {
    return "max-lifetime probe LP failed to converge";
  }
};

const MrlcVariant kMrlcStrict{BoundMode::kPaperStrict};
const MrlcVariant kMrlcDirect{BoundMode::kDirect};
const EtxVariant kEtx;
const RetxMrlcVariant kRetxMrlc;
const MinEnergyVariant kMinEnergy;
const MaxLifetimeVariant kMaxLifetime;

}  // namespace

const ProblemVariant& problem_variant(VariantId id) {
  switch (id) {
    case VariantId::kMrlc:
      return kMrlcDirect;
    case VariantId::kEtx:
      return kEtx;
    case VariantId::kMinEnergy:
      return kMinEnergy;
    case VariantId::kMaxLifetime:
      return kMaxLifetime;
  }
  MRLC_REQUIRE(false, "unknown problem variant");
  return kMrlcDirect;  // unreachable
}

const ProblemVariant& mrlc_variant(BoundMode mode) {
  return mode == BoundMode::kPaperStrict ? kMrlcStrict : kMrlcDirect;
}

const ProblemVariant& retx_mrlc_variant() { return kRetxMrlc; }

namespace {

/// Bumps the lazily-registered per-variant solve counter and the variant
/// gauge (mrlc_solve eagerly registers all names so every metric document
/// carries the full set).
void record_variant_solve(const ProblemVariant& variant) {
  metrics::counter(std::string("ira.variant_solves.") + variant.name()).add();
  metrics::gauge("solver.variant").set(static_cast<double>(variant.id()));
}

}  // namespace

VariantResult run_variant_ira(const ProblemVariant& variant,
                              const wsn::Network& net, double requested_bound,
                              const IraOptions& options) {
  const bool metered = variant.emit_ira_metrics();
  std::optional<trace::ScopedPhase> phase;
  if (metered) {
    phase.emplace("ira");
    static metrics::Counter& solves = metrics::counter("ira.solves");
    solves.add();
    record_variant_solve(variant);
  }
  net.validate();
  MRLC_REQUIRE(requested_bound > 0.0, "lifetime bound must be positive");
  const double internal = variant.internal_bound(net, requested_bound);
  const int n = net.node_count();

  graph::Graph working = net.topology();  // the engine mutates a working copy
  // mrlc keeps the native -ln q edge weights (bit-identical objective);
  // every other variant re-weights the working copy so both the LP
  // objective and the final MST tier minimize the variant's edge cost.
  if (variant.id() != VariantId::kMrlc) {
    for (graph::EdgeId id : working.alive_edge_ids()) {
      working.set_weight(id, variant.edge_cost(net, id));
    }
  }
  const bool start_constrained = variant.constrained_at_start();
  std::vector<bool> constrained(static_cast<std::size_t>(n),
                                start_constrained);
  int constrained_count = start_constrained ? n : 0;

  IraStats stats;
  // One cut pool per solve: violated sets survive across outer iterations
  // (which rebuild the LP and would otherwise forget every subtour row) and
  // are rechecked before any new max-flow sweeps.
  SubtourCutPool cut_pool;
  CutLoopOptions cut_options;
  cut_options.simplex = options.simplex;
  cut_options.max_rounds = options.max_cut_rounds;
  cut_options.warm_start = options.warm_start;
  // The pool is deliberately not gated on warm_start: separation then sees
  // identical fractional points in both modes, so warm vs cold differ only
  // in pivot paths — the invariant the warm/cold property tests pin down.
  // A caller-owned shared pool (the service warm cache) replaces the
  // per-solve one wholesale, so remembered sets outlive this solve.
  cut_options.pool =
      options.shared_pool != nullptr ? options.shared_pool : &cut_pool;
  cut_options.budget = options.budget;

  // An unconstrained variant (min_energy) still owes one certified LP
  // round; `first` lets it through with W = ∅.
  bool first = true;
  while (first || constrained_count > 0) {
    first = false;
    // Deterministic checkpoint: a budget that ran out during the previous
    // iteration's pruning stops here before the next (expensive) LP tier.
    if (options.budget != nullptr && options.budget->exhausted()) {
      throw BudgetExhaustedError(variant.checkpoint_message());
    }
    ++stats.outer_iterations;

    DegreeBounds rows = variant.bounds(net, constrained, internal);
    MrlcLpFormulation formulation(working, std::move(rows.caps),
                                  std::move(rows.row_weight));
    const CutLpResult lp_result =
        solve_with_subtour_cuts(formulation, cut_options);
    stats.lp_solves += lp_result.lp_solves;
    stats.simplex_iterations += lp_result.simplex_iterations;
    stats.cuts_added += lp_result.cuts_added;
    stats.cold_fallbacks += lp_result.cold_fallbacks;

    // Publish the dual bound as soon as the first outer iteration has any
    // completed cut-round optimum — every completed round solves a
    // relaxation of the full problem (see IraProgress for the mode caveat),
    // so this is valid even when the same solve is interrupted just after.
    if (options.progress != nullptr && stats.outer_iterations == 1 &&
        lp_result.has_objective) {
      options.progress->first_lp_objective = lp_result.objective;
      options.progress->first_lp_valid = true;
    }

    if (lp_result.status == lp::SolveStatus::kInfeasible) {
      throw InfeasibleError(
          variant.infeasible_message(requested_bound, internal));
    }
    if (lp_result.status == lp::SolveStatus::kInterrupted) {
      throw BudgetExhaustedError(variant.interrupted_message(
          stats.outer_iterations, stats.lp_solves));
    }
    MRLC_ENSURE(lp_result.status == lp::SolveStatus::kOptimal,
                variant.lp_failed_message());

    // Line 6: drop edges outside the support of the extreme point.
    for (graph::EdgeId id : working.alive_edge_ids()) {
      if (lp_result.edge_values[static_cast<std::size_t>(id)] <=
          options.zero_tolerance) {
        working.remove_edge(id);
        ++stats.edges_removed;
      }
    }
    if (constrained_count == 0) break;  // W = ∅ from the start (min_energy)

    // Line 8: relax every vertex whose constraint can no longer bind.
    int removed_this_round = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!constrained[static_cast<std::size_t>(v)]) continue;
      if (variant.row_removable(net, working, v, requested_bound)) {
        constrained[static_cast<std::size_t>(v)] = false;
        --constrained_count;
        ++removed_this_round;
        ++stats.constraints_removed;
      }
    }

    if (removed_this_round == 0) {
      // Theorem 2 rules this out at exact extreme points; floating-point
      // cuts can produce it.  Either fall back (remove the slackest vertex)
      // or give up loudly.
      MRLC_ENSURE(options.allow_slack_fallback,
                  variant.fallback_disabled_message());
      stats.used_fallback = true;
      graph::VertexId best = -1;
      double best_slack = -std::numeric_limits<double>::infinity();
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!constrained[static_cast<std::size_t>(v)]) continue;
        const double slack =
            variant.removal_slack(net, working, v, requested_bound);
        if (slack > best_slack) {
          best_slack = slack;
          best = v;
        }
      }
      MRLC_ENSURE(best != -1, "constrained set empty despite counter");
      constrained[static_cast<std::size_t>(best)] = false;
      --constrained_count;
      ++stats.constraints_removed;
    }
  }

  if (metered) {
    static metrics::Counter& iterations =
        metrics::counter("ira.outer_iterations");
    static metrics::Counter& lp_solves = metrics::counter("ira.lp_solves");
    static metrics::Counter& cuts = metrics::counter("ira.cuts_added");
    static metrics::Counter& edges = metrics::counter("ira.edges_removed");
    static metrics::Counter& relaxed =
        metrics::counter("ira.constraints_relaxed");
    static metrics::Counter& fallbacks =
        metrics::counter("ira.slack_fallbacks");
    static metrics::Histogram& iter_hist =
        metrics::histogram("ira.iterations_per_solve");
    iterations.add(stats.outer_iterations);
    lp_solves.add(stats.lp_solves);
    cuts.add(stats.cuts_added);
    edges.add(stats.edges_removed);
    relaxed.add(stats.constraints_removed);
    if (stats.used_fallback) fallbacks.add();
    iter_hist.record(stats.outer_iterations);
  }

  // W = ∅: LP(G, L', ∅) is the Subtour LP, whose extreme points are
  // integral (Lemma 1) — equivalently, the MST of the surviving edges.
  const auto mst = graph::prim_mst(working, net.sink());
  if (!mst.has_value()) {
    throw InfeasibleError(variant.disconnected_message());
  }

  VariantResult out;
  out.variant = variant.id();
  out.tree = wsn::AggregationTree::from_edges(net, mst->edges);
  out.objective = variant.tree_objective(net, out.tree);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.bound_metric = variant.bound_metric(net, out.tree);
  out.internal_bound = internal;
  out.meets_bound = variant.tree_feasible(net, out.tree, requested_bound);
  out.stats = stats;
  return out;
}

std::vector<double> lifetime_candidates(const wsn::Network& net) {
  const int n = net.node_count();
  std::vector<double> ladder;
  ladder.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (graph::VertexId v = 0; v < n; ++v) {
    for (int k = 0; k < n; ++k) {
      ladder.push_back(
          net.energy_model().node_lifetime(net.initial_energy(v), k));
    }
  }
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

namespace {

/// max_lifetime: the lifetime of any tree is I(v)/(Tx + Rx*k) for its
/// bottleneck node v with k children, so the achievable values form a small
/// discrete ladder.  The scan finds the top rung any tree can stand on:
/// LP feasibility probes certify the upper bound (infeasible at c => no
/// tree reaches c), direct-mode IRA solves construct trees, and the
/// lexicographic-AAML tree backstops candidates the near-integral LP
/// constructs but IRA's bounded violation misses.
VariantResult solve_max_lifetime(const wsn::Network& net, double floor_bound,
                                 const IraOptions& options) {
  const ProblemVariant& variant = problem_variant(VariantId::kMaxLifetime);
  trace::ScopedPhase phase("ira");
  static metrics::Counter& solves = metrics::counter("ira.solves");
  solves.add();
  record_variant_solve(variant);
  net.validate();
  MRLC_REQUIRE(floor_bound > 0.0, "lifetime bound must be positive");

  const std::vector<double> ladder = lifetime_candidates(net);

  IraOptions probe_options = options;
  probe_options.bound_mode = BoundMode::kDirect;
  probe_options.progress = nullptr;

  // Binary search the top LP-feasible rung: lp_lifetime_feasible is
  // monotone (caps only grow as the bound shrinks), so everything above
  // `hi` is certified unreachable.
  IraStats stats;
  auto checkpoint = [&]() {
    if (options.budget != nullptr && options.budget->exhausted()) {
      throw BudgetExhaustedError(variant.checkpoint_message());
    }
  };
  std::size_t lo = 0;              // invariant: ladder[lo] is LP-feasible
  std::size_t hi = ladder.size();  // invariant: rungs >= hi are infeasible
  checkpoint();
  if (!lp_lifetime_feasible(net, ladder.front(), probe_options)) {
    throw InfeasibleError(variant.infeasible_message(floor_bound, 0.0));
  }
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    checkpoint();
    ++stats.outer_iterations;
    if (lp_lifetime_feasible(net, ladder[mid], probe_options)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double certified_upper = ladder[lo];

  // Constructive side: walk the feasible rungs downward with IRA, keeping
  // the lexicographic-AAML tree as the deployable backstop.
  baselines::AamlOptions aaml_options;
  aaml_options.mode = baselines::AamlSearchMode::kLexicographic;
  aaml_options.initial = baselines::AamlInitialTree::kBfs;
  const baselines::AamlResult aaml = baselines::aaml(net, aaml_options);

  std::optional<wsn::AggregationTree> best_tree;
  double best_lifetime = -1.0;
  for (std::size_t i = lo + 1; i-- > 0;) {
    const double candidate = ladder[i];
    if (candidate <= aaml.lifetime) break;  // the backstop already wins
    checkpoint();
    try {
      const IraResult res =
          IterativeRelaxation(probe_options).solve(net, candidate);
      stats.outer_iterations += res.stats.outer_iterations;
      stats.lp_solves += res.stats.lp_solves;
      stats.simplex_iterations += res.stats.simplex_iterations;
      stats.cuts_added += res.stats.cuts_added;
      stats.edges_removed += res.stats.edges_removed;
      stats.constraints_removed += res.stats.constraints_removed;
      stats.cold_fallbacks += res.stats.cold_fallbacks;
      stats.used_fallback = stats.used_fallback || res.stats.used_fallback;
      if (res.lifetime > best_lifetime) {
        best_lifetime = res.lifetime;
        best_tree = res.tree;
      }
      if (res.meets_bound) break;  // top reachable rung found
    } catch (const InfeasibleError&) {
      // LP-feasible but no integral tree survived the relaxation at this
      // rung; step down.
    }
  }
  if (!best_tree.has_value() || aaml.lifetime > best_lifetime) {
    best_tree = aaml.tree;
    best_lifetime = aaml.lifetime;
  }

  VariantResult out;
  out.variant = VariantId::kMaxLifetime;
  out.tree = *best_tree;
  out.objective = wsn::network_lifetime(net, out.tree);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = out.objective;
  out.bound_metric = out.objective;
  out.internal_bound = certified_upper;
  out.meets_bound = out.objective >= floor_bound * (1.0 - 1e-12);
  out.stats = stats;
  if (!out.meets_bound) {
    throw InfeasibleError(
        variant.infeasible_message(floor_bound, certified_upper));
  }
  return out;
}

}  // namespace

VariantResult solve_variant(VariantId id, const wsn::Network& net,
                            double bound, const IraOptions& options) {
  switch (id) {
    case VariantId::kMrlc:
      return run_variant_ira(mrlc_variant(options.bound_mode), net, bound,
                             options);
    case VariantId::kEtx:
    case VariantId::kMinEnergy:
      return run_variant_ira(problem_variant(id), net, bound, options);
    case VariantId::kMaxLifetime:
      return solve_max_lifetime(net, bound, options);
  }
  MRLC_REQUIRE(false, "unknown problem variant");
  return {};  // unreachable
}

}  // namespace mrlc::core
