#pragma once

/// \file solver.hpp
/// \brief `MrlcSolver` — the one-call front door to the library.
///
/// The lower-level pieces each expose one trade-off: `IterativeRelaxation`
/// wants a bound-mode decision, `bracket_max_lifetime` probes what is
/// achievable, the exact solvers trade time for certainty.  This facade
/// packages the workflow a deployment actually wants:
///
/// 1. Probe feasibility first, so an unachievable request fails with the
///    achievable bracket attached instead of a bare "infeasible".
/// 2. Try the paper's strict mode (hard lifetime guarantee).  If its
///    inflated L' is undefined or infeasible while the request itself is
///    achievable, fall back to the direct relaxation and report the
///    (bounded) violation honestly.
/// 3. Optionally certify the result against branch-and-bound when the
///    instance is small enough to afford it.

#include <optional>
#include <string>

#include "core/branch_bound.hpp"
#include "core/feasibility.hpp"
#include "core/ira.hpp"

namespace mrlc::core {

struct SolverOptions {
  IraOptions ira;            ///< bound_mode is managed by the facade
  bool allow_direct_fallback = true;
  /// When true and the instance is small, run branch-and-bound afterwards
  /// and report the optimality gap.
  bool certify_with_exact = false;
  std::uint64_t certify_node_budget = 2'000'000;
};

/// How the returned tree was obtained.
enum class SolveMode {
  kStrict,          ///< paper Algorithm 1 (L'); lifetime guaranteed
  kDirectFallback,  ///< direct relaxation; violation <= 2 children/node
};

struct SolveReport {
  IraResult result;
  SolveMode mode = SolveMode::kStrict;
  /// Filled when the requested bound was proven unachievable: what IS
  /// achievable on this network.
  std::optional<LifetimeBracket> achievable;
  /// Filled when certification ran and succeeded.
  std::optional<double> exact_cost;
  /// result.cost - exact_cost (0 when IRA was optimal); nullopt when not
  /// certified.
  std::optional<double> optimality_gap;
  std::string narrative;  ///< one-line human-readable outcome summary
};

class MrlcSolver {
 public:
  explicit MrlcSolver(SolverOptions options = {}) : options_(options) {}

  /// \brief Solves MRLC with automatic mode selection (see file comment).
  /// \param net  validated, connected network instance.
  /// \param lifetime_bound  required network lifetime LC, in rounds.
  /// \return the tree plus how it was obtained, the achievable bracket
  ///         (when probed), optional certification, and a one-line
  ///         narrative.
  /// \throws InfeasibleError when no aggregation tree of lifetime >=
  ///         `lifetime_bound` exists; the message includes the achievable
  ///         lifetime bracket.
  SolveReport solve(const wsn::Network& net, double lifetime_bound) const;

 private:
  SolverOptions options_;
};

}  // namespace mrlc::core
