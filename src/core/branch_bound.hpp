#pragma once

/// \file branch_bound.hpp
/// \brief Exact MRLC by branch-and-bound — practical at the paper's scale.
///
/// `exact.hpp` enumerates every spanning tree, which dies around n = 10 on
/// dense graphs.  This solver searches over edges in cost order with three
/// prunes, which handles the 16-node DFL instance in well under a second
/// and therefore lets the benches report IRA's true optimality gap at the
/// paper's scale:
///
/// 1. **Cost bound** — partial cost + MST-of-contractible-remainder lower
///    bound must beat the incumbent.  The bound contracts already-joined
///    components (Kruskal on component ids), so it is exact when no degree
///    caps bind.
/// 2. **Degree caps** — children budgets implied by LC are enforced on the
///    partial solution (children of v <= floor(B(v, LC)) since any chosen
///    edge consumes degree).
/// 3. **Connectivity** — an edge whose skipping disconnects the remaining
///    graph is forced.
///
/// The search still has exponential worst cases (it is an NP-complete
/// problem); `max_nodes_explored` guards runaway instances.

#include <cstdint>
#include <optional>

#include "common/budget.hpp"
#include "core/exact.hpp"
#include "core/variant.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {

struct BranchBoundOptions {
  std::uint64_t max_nodes_explored = 50'000'000;
  /// Optional cooperative budget (not owned): charged with each wave's
  /// explored-node total at the serial wave merge, so the interruption
  /// point is identical for every thread count.  On exhaustion the search
  /// returns the incumbent with `complete = false` (or throws
  /// `BudgetExhaustedError` when no feasible tree was found yet).
  Budget* budget = nullptr;
};

struct BranchBoundResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  /// The solved variant's objective of the tree (== `cost` for mrlc).
  double objective = 0.0;
  std::uint64_t nodes_explored = 0;
  /// True when the search ran to completion (the tree is provably optimal);
  /// false when a cooperative budget interrupted it and `tree` is only the
  /// best incumbent found so far.
  bool complete = true;
};

/// \brief Minimum-cost aggregation tree with lifetime >= `lifetime_bound`.
/// \param net  the network instance (must be connected to have a solution).
/// \param lifetime_bound  required network lifetime LC, in rounds.
/// \param options  search budget knobs.
/// \return the provably optimal tree (check `complete` when a cooperative
///         budget is attached), or nullopt when no spanning tree satisfies
///         the bound.
/// \throws std::invalid_argument when the search exceeds the node budget.
/// \throws BudgetExhaustedError when a cooperative budget runs out before
///         any feasible tree is found.
std::optional<BranchBoundResult> branch_bound_mrlc(
    const wsn::Network& net, double lifetime_bound,
    const BranchBoundOptions& options = {});

/// \brief Exact solve of any problem variant by the same search.
///
/// * `mrlc` delegates to `branch_bound_mrlc` (bit-identical).
/// * `etx` / `min_energy` search under the variant's edge costs with the
///   variant's (weighted) degree rows enforced on partial solutions; the
///   returned tree is provably optimal over the trees satisfying those
///   rows (for etx that is the *conservative* feasible set — the same set
///   the LP relaxation certifies against).
/// * `max_lifetime` binary-searches the discrete lifetime ladder with an
///   exact feasibility search per rung, so unlike the LP-probed
///   `solve_variant` scan its answer is the true maximum lifetime.
/// \return the optimal tree or nullopt when no spanning tree satisfies the
///         variant's rows at `bound` (never nullopt for min_energy on a
///         connected topology).
std::optional<BranchBoundResult> branch_bound_variant(
    VariantId id, const wsn::Network& net, double bound,
    const BranchBoundOptions& options = {});

}  // namespace mrlc::core
