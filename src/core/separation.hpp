#pragma once

/// \file separation.hpp
/// \brief Separation oracle for the subtour constraints x(E(S)) <= |S| - 1.
///
/// Theorem 1 (Grötschel–Lovász–Schrijver) reduces optimizing over the
/// subtour polytope to a polynomial separation oracle; the paper cites the
/// min-cut based oracle of [12].  We implement it in two stages:
///
/// 1. A cheap heuristic: connected components of the fractional support —
///    if a proper component S already carries more than |S| - 1 total
///    weight, its subtour row is violated (this catches the common case of
///    a fractional cycle split off from the rest).
/// 2. The exact Padberg–Wolsey reduction.  Using
///    x(E(S)) = 1/2 (sum_{v in S} x(δ(v)) - x(δ(S))),
///    the row for S is violated iff
///    f(S) = x(δ(S)) - sum_{v in S} (x(δ(v)) - 2)  <  2.
///    Minimizing f over all S with a fixed vertex u inside and r outside is
///    a minimum s-t cut on an auxiliary network (node weights hung off the
///    source/sink, edge capacities x_e); sweeping u over V \ {r} in both
///    orientations covers every nonempty proper S.

#include <set>
#include <vector>

#include "common/budget.hpp"
#include "graph/graph.hpp"

namespace mrlc::core {

/// Which machinery the oracle may use.  `kExact` (default) runs the cheap
/// component heuristic first and falls through to the Padberg–Wolsey
/// max-flow sweep, so "no violation found" is a proof.  `kHeuristicOnly`
/// skips the flow sweep — much cheaper per call, but it can miss violated
/// sets, so a cutting-plane loop driven by it may terminate on a point
/// outside the subtour polytope (measured in bench/micro_ablations.cpp).
enum class SeparationMode { kExact, kHeuristicOnly };

/// Memory of previously violated vertex sets, shared across separation
/// calls (cut rounds, and outer IRA iterations, which rebuild the LP and
/// thereby discard the rows themselves).  Before paying for a max-flow
/// sweep the oracle rechecks pooled sets with a cheap O(|E|) evaluation —
/// sets that cut off one fractional point often cut off the next (counted
/// in `separation.pool_hits`) — and uses pool statistics to order the
/// sweep so that historically "hot" vertices are probed first, which makes
/// the early exit fire sooner.  Vertex ids must stay stable for the pool's
/// lifetime (IRA only removes edges, never vertices).
class SubtourCutPool {
 public:
  /// Records a violated set (any order; stored sorted, deduplicated).
  /// When a capacity is set and the pool is full, the oldest remembered
  /// set is evicted first (FIFO) so long-lived pools — the solver
  /// service keeps one per cached topology — stay bounded in both memory
  /// and per-recheck cost.
  void remember(const std::vector<graph::VertexId>& subset);

  /// Bounds the pool at `max_sets` remembered sets (0 = unbounded, the
  /// default).  Shrinking below the current size evicts oldest-first
  /// immediately.
  void set_capacity(std::size_t max_sets);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Pooled sets in first-remembered order (each sorted).
  const std::vector<std::vector<graph::VertexId>>& sets() const noexcept {
    return sets_;
  }
  std::size_t size() const noexcept { return sets_.size(); }

  /// Sweep-order hint: all of 0..vertex_count-1, sorted by how often each
  /// vertex appeared in remembered sets (descending; ties by id, so an
  /// empty pool yields the identity order).
  std::vector<graph::VertexId> hot_vertices(int vertex_count) const;

 private:
  void evict_to_capacity();

  std::set<std::vector<graph::VertexId>> seen_;
  std::vector<std::vector<graph::VertexId>> sets_;
  std::vector<long long> appearances_;  ///< per vertex id, grown on demand
  std::size_t capacity_ = 0;            ///< 0 = unbounded
};

/// \brief Finds vertex sets whose subtour rows are violated by the given
/// fractional point.
/// \param g  the working graph (dead edges allowed).
/// \param edge_values  x_e per edge id; dead edges must carry 0.
/// \param tolerance  violation slack below which a row counts as satisfied.
/// \param mode  kExact proves "no violation"; kHeuristicOnly is cheap but
///        incomplete.
/// \return at most a handful of the most useful violated sets per call
///         (deduplicated, each sorted); empty means x satisfies every
///         subtour constraint within `tolerance` (only under kExact).
/// \param pool  optional cross-call memory: pooled sets are rechecked
///        before any max-flow runs, the sweep order follows the pool's hot
///        vertices, and newly found sets are remembered.  Pass nullptr for
///        the stateless oracle.
/// \param budget  optional cooperative budget (not owned): one unit per
///        max-flow, charged at the serial batch merge so the charge points
///        are thread-count independent.  An exhausted budget stops the
///        sweep at the next batch boundary and returns whatever was found
///        so far — an empty result then does NOT certify separation.
std::vector<std::vector<graph::VertexId>> find_violated_subtours(
    const graph::Graph& g, const std::vector<double>& edge_values,
    double tolerance = 1e-6, SeparationMode mode = SeparationMode::kExact,
    SubtourCutPool* pool = nullptr, Budget* budget = nullptr);

/// One Padberg–Wolsey minimizer result: the minimizing subset and its
/// objective value f(S) (violated iff f < 2).
struct SeparationCut {
  std::vector<graph::VertexId> subset;  ///< the minimizing S, sorted
  double f_value = 0.0;                 ///< min f(S); subtour violated iff < 2
};

/// \brief Exact minimizer of f(S) (see file comment) over all S containing
/// `forced_in` and excluding `forced_out`.  Exposed for tests.
/// \param g  the working graph.
/// \param edge_values  x_e per edge id (one entry per edge, dead edges 0).
/// \param forced_in  vertex that must be inside S.
/// \param forced_out  vertex that must be outside S (!= forced_in).
/// \return the minimizing subset and its f value (one max-flow solve).
SeparationCut min_subtour_cut(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              graph::VertexId forced_in, graph::VertexId forced_out);

/// \brief Exact minimizer of f(S) over *all* S containing `forced_in`
/// (no excluded vertex; S = V is a candidate).  Because
/// f(S) = 2(|S| - x(E(S))), a point on the span hyperplane
/// x(E(V)) = |V| - 1 has f(V) = 2 exactly, so whenever any proper subset
/// violates its subtour row the minimum here drops below 2 and the
/// minimizer is proper — one max-flow per swept vertex instead of the two
/// per (vertex, orientation) pair of the classic sweep.  Exactness of a
/// "nothing below 2" verdict requires x(E(V)) >= |V| - 1 (callers inside
/// the cut loop always have the span row; `find_violated_subtours` checks
/// and falls back to the two-orientation sweep otherwise).
SeparationCut min_subtour_cut_containing(const graph::Graph& g,
                                         const std::vector<double>& edge_values,
                                         graph::VertexId forced_in);

/// \brief x(E(S)): total edge value internal to a vertex subset.
/// \param g  the graph; \param edge_values  x_e per edge id;
/// \param subset  the vertex set S (no duplicates).
/// \return sum of `edge_values` over alive edges with both ends in S.
double subset_internal_weight(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              const std::vector<graph::VertexId>& subset);

}  // namespace mrlc::core
