#pragma once

/// \file separation.hpp
/// \brief Separation oracle for the subtour constraints x(E(S)) <= |S| - 1.
///
/// Theorem 1 (Grötschel–Lovász–Schrijver) reduces optimizing over the
/// subtour polytope to a polynomial separation oracle; the paper cites the
/// min-cut based oracle of [12].  We implement it in two stages:
///
/// 1. A cheap heuristic: connected components of the fractional support —
///    if a proper component S already carries more than |S| - 1 total
///    weight, its subtour row is violated (this catches the common case of
///    a fractional cycle split off from the rest).
/// 2. The exact Padberg–Wolsey reduction.  Using
///    x(E(S)) = 1/2 (sum_{v in S} x(δ(v)) - x(δ(S))),
///    the row for S is violated iff
///    f(S) = x(δ(S)) - sum_{v in S} (x(δ(v)) - 2)  <  2.
///    Minimizing f over all S with a fixed vertex u inside and r outside is
///    a minimum s-t cut on an auxiliary network (node weights hung off the
///    source/sink, edge capacities x_e); sweeping u over V \ {r} in both
///    orientations covers every nonempty proper S.

#include <vector>

#include "graph/graph.hpp"

namespace mrlc::core {

/// Which machinery the oracle may use.  `kExact` (default) runs the cheap
/// component heuristic first and falls through to the Padberg–Wolsey
/// max-flow sweep, so "no violation found" is a proof.  `kHeuristicOnly`
/// skips the flow sweep — much cheaper per call, but it can miss violated
/// sets, so a cutting-plane loop driven by it may terminate on a point
/// outside the subtour polytope (measured in bench/micro_ablations.cpp).
enum class SeparationMode { kExact, kHeuristicOnly };

/// Finds vertex sets whose subtour rows are violated by `edge_values`
/// (per edge id; dead edges must be 0).  Returns at most a handful of the
/// most useful sets per call (deduplicated); empty means x satisfies all
/// subtour constraints within `tolerance` (only under kExact).
std::vector<std::vector<graph::VertexId>> find_violated_subtours(
    const graph::Graph& g, const std::vector<double>& edge_values,
    double tolerance = 1e-6, SeparationMode mode = SeparationMode::kExact);

/// Exact minimizer of f(S) (see file comment) with u forced inside and r
/// forced outside.  Exposed for tests.
struct SeparationCut {
  std::vector<graph::VertexId> subset;
  double f_value = 0.0;
};
SeparationCut min_subtour_cut(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              graph::VertexId forced_in, graph::VertexId forced_out);

/// x(E(S)) for a vertex subset (helper shared with tests).
double subset_internal_weight(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              const std::vector<graph::VertexId>& subset);

}  // namespace mrlc::core
