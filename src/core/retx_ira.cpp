#include "core/retx_ira.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "core/lp_formulation.hpp"
#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

namespace {

/// Conservative per-(vertex, edge) energy rate: the sink only ever
/// receives (exact), a non-sink node is charged the sender role Tx/q on
/// every incident edge (upper bound, since Rx < Tx).
double conservative_rate(const wsn::Network& net, graph::VertexId v,
                         graph::EdgeId e) {
  const double per_packet = v == net.sink() ? net.energy_model().rx_joules
                                            : net.energy_model().tx_joules;
  return per_packet / net.link_prr(e);
}

/// Worst-case conservative rate of v if every remaining support edge at v
/// became a tree edge.
double worst_case_rate(const wsn::Network& net, const graph::Graph& working,
                       graph::VertexId v) {
  double rate = 0.0;
  for (graph::EdgeId e : working.incident(v)) {
    rate += conservative_rate(net, v, e);
  }
  return rate;
}

}  // namespace

RetxIraResult retx_aware_ira(const wsn::Network& net, double lifetime_bound,
                             const IraOptions& options) {
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");

  const int n = net.node_count();
  graph::Graph working = net.topology();
  std::vector<bool> constrained(static_cast<std::size_t>(n), true);
  int constrained_count = n;

  IraStats stats;
  // Shared across outer iterations, exactly as in the plain IRA: pooled
  // subtour sets outlive the per-iteration LP rebuilds.
  SubtourCutPool cut_pool;
  CutLoopOptions cut_options;
  cut_options.simplex = options.simplex;
  cut_options.max_rounds = options.max_cut_rounds;
  cut_options.warm_start = options.warm_start;
  cut_options.pool = &cut_pool;
  cut_options.budget = options.budget;

  // Per-node energy budget in joules per round.
  std::vector<double> budget(static_cast<std::size_t>(n));
  for (graph::VertexId v = 0; v < n; ++v) {
    budget[static_cast<std::size_t>(v)] = net.initial_energy(v) / lifetime_bound;
  }

  while (constrained_count > 0) {
    if (options.budget != nullptr && options.budget->exhausted()) {
      throw BudgetExhaustedError(
          "budget exhausted between retx-IRA outer iterations");
    }
    ++stats.outer_iterations;

    std::vector<std::optional<double>> caps(static_cast<std::size_t>(n));
    for (graph::VertexId v = 0; v < n; ++v) {
      if (constrained[static_cast<std::size_t>(v)]) {
        caps[static_cast<std::size_t>(v)] = budget[static_cast<std::size_t>(v)];
      }
    }
    MrlcLpFormulation formulation(
        working, std::move(caps),
        [&](graph::VertexId v, graph::EdgeId e) {
          return conservative_rate(net, v, e);
        });
    const CutLpResult lp_result =
        solve_with_subtour_cuts(formulation, cut_options);
    stats.lp_solves += lp_result.lp_solves;
    stats.simplex_iterations += lp_result.simplex_iterations;
    stats.cuts_added += lp_result.cuts_added;

    if (lp_result.status == lp::SolveStatus::kInfeasible) {
      std::ostringstream os;
      os << "no aggregation tree meets the retransmission-aware lifetime "
         << lifetime_bound << " under the conservative energy rows";
      throw InfeasibleError(os.str());
    }
    if (lp_result.status == lp::SolveStatus::kInterrupted) {
      std::ostringstream os;
      os << "budget exhausted inside the retx-aware cutting-plane loop "
         << "(outer iteration " << stats.outer_iterations << ")";
      throw BudgetExhaustedError(os.str());
    }
    MRLC_ENSURE(lp_result.status == lp::SolveStatus::kOptimal,
                "retx-aware LP failed to converge");

    for (graph::EdgeId id : working.alive_edge_ids()) {
      if (lp_result.edge_values[static_cast<std::size_t>(id)] <=
          options.zero_tolerance) {
        working.remove_edge(id);
        ++stats.edges_removed;
      }
    }

    int removed_this_round = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!constrained[static_cast<std::size_t>(v)]) continue;
      // Conservative Line-8 analogue: remove only when even the full
      // support fits the budget outright.  (The +2 token slack of the
      // plain algorithm does not port to weighted rows, so no slack is
      // taken here; the logged fallback provides progress instead.)
      if (worst_case_rate(net, working, v) <=
          budget[static_cast<std::size_t>(v)] + 1e-15) {
        constrained[static_cast<std::size_t>(v)] = false;
        --constrained_count;
        ++removed_this_round;
        ++stats.constraints_removed;
      }
    }
    if (removed_this_round == 0) {
      MRLC_ENSURE(options.allow_slack_fallback,
                  "no removable retx-lifetime constraint and the fallback is "
                  "disabled");
      stats.used_fallback = true;
      graph::VertexId best = -1;
      double best_slack = -std::numeric_limits<double>::infinity();
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!constrained[static_cast<std::size_t>(v)]) continue;
        const double slack = budget[static_cast<std::size_t>(v)] -
                             worst_case_rate(net, working, v);
        if (slack > best_slack) {
          best_slack = slack;
          best = v;
        }
      }
      MRLC_ENSURE(best != -1, "constrained set empty despite counter");
      constrained[static_cast<std::size_t>(best)] = false;
      --constrained_count;
      ++stats.constraints_removed;
    }
  }

  const auto mst = graph::prim_mst(working, net.sink());
  if (!mst.has_value()) {
    throw InfeasibleError("edge pruning disconnected the retx-aware support");
  }

  RetxIraResult out;
  out.tree = wsn::AggregationTree::from_edges(net, mst->edges);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime_retx = wsn::network_lifetime_retx(net, out.tree);
  out.meets_bound = out.lifetime_retx >= lifetime_bound * (1.0 - 1e-12);
  out.stats = stats;
  return out;
}

}  // namespace mrlc::core
