#include "core/retx_ira.hpp"

#include "core/variant.hpp"

namespace mrlc::core {

// The historical retx-aware solve is the mrlc objective (-ln q) under the
// etx variant's conservative energy rows; it runs on the shared variant
// engine through the retx-mrlc adapter, which keeps the historical
// diagnostics and opts out of the `ira.*` metrics (so pre-interface metric
// documents stay unchanged).
RetxIraResult retx_aware_ira(const wsn::Network& net, double lifetime_bound,
                             const IraOptions& options) {
  VariantResult res =
      run_variant_ira(retx_mrlc_variant(), net, lifetime_bound, options);
  RetxIraResult out;
  out.tree = std::move(res.tree);
  out.cost = res.cost;
  out.reliability = res.reliability;
  out.lifetime_retx = res.bound_metric;
  out.meets_bound = res.meets_bound;
  out.stats = res.stats;
  return out;
}

}  // namespace mrlc::core
