#include "core/anytime.hpp"

#include <algorithm>
#include <sstream>

#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

const char* to_string(AnytimeStatus status) noexcept {
  switch (status) {
    case AnytimeStatus::kOptimal:
      return "optimal";
    case AnytimeStatus::kFeasibleBudgetExhausted:
      return "feasible_budget_exhausted";
    case AnytimeStatus::kInfeasible:
      return "infeasible";
    case AnytimeStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

/// The seeded incumbent: a feasible tree obtained without any LP work.
struct Incumbent {
  bool valid = false;
  wsn::AggregationTree tree;
  double cost = 0.0;
  bool meets_bound = false;
  const char* origin = "none";
};

/// Greedy (degree-capped Kruskal) and the plain MST both cost O(E log E);
/// the cheapest candidate that meets the bound wins (the MST, when it
/// qualifies, is unbeatable — it is the global cost minimum).  When
/// neither meets LC the greedy tree is kept anyway: its cap relaxations
/// chase the bound, so it is the best-effort fallback, reported honestly
/// through `meets_bound = false`.
Incumbent seed_incumbent(const wsn::Network& net, double lifetime_bound) {
  Incumbent best;
  try {
    const baselines::MstResult mst = baselines::mst_baseline(net);
    best.valid = true;
    best.tree = mst.tree;
    best.cost = mst.cost;
    best.meets_bound = mst.lifetime >= lifetime_bound * (1.0 - 1e-12);
    best.origin = "mst";
  } catch (const InfeasibleError&) {
    // Disconnected topology: the IRA tier will throw the real diagnosis.
  }
  if (!best.meets_bound) {
    try {
      const baselines::GreedyMrlcResult greedy =
          baselines::greedy_mrlc(net, lifetime_bound);
      if (greedy.meets_bound || !best.valid) {
        best.valid = true;
        best.tree = greedy.tree;
        best.cost = greedy.cost;
        best.meets_bound = greedy.meets_bound;
        best.origin = "greedy";
      }
    } catch (const InfeasibleError&) {
      // Greedy stuck; keep whatever we have.
    }
  }
  return best;
}

void fill_tree_metrics(const wsn::Network& net, double lifetime_bound,
                       AnytimeResult& out) {
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.meets_bound = out.lifetime >= lifetime_bound * (1.0 - 1e-12);
}

}  // namespace

AnytimeResult solve_anytime(const wsn::Network& net, double lifetime_bound,
                            const AnytimeOptions& options) {
  trace::ScopedPhase phase("anytime");
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  try {
    net.validate();
  } catch (const InfeasibleError& e) {
    // Disconnected topology: report through the typed status like every
    // other structural infeasibility (per-element data problems still
    // throw invalid_argument — those are caller bugs, not instances).
    AnytimeResult out;
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  }

  const Incumbent incumbent = seed_incumbent(net, lifetime_bound);

  IraOptions ira_options = options.ira;
  ira_options.bound_mode = BoundMode::kDirect;  // see AnytimeOptions
  ira_options.budget = options.budget;
  IraProgress progress;
  ira_options.progress = &progress;

  AnytimeResult out;
  auto certified_bound = [&]() {
    // Any completed first-iteration LP round bounds OPT(LC) from below in
    // kDirect mode; with no completed round, 0 is valid (costs -ln q >= 0).
    return progress.first_lp_valid ? std::max(progress.first_lp_objective, 0.0)
                                   : 0.0;
  };

  try {
    const IraResult ira =
        IterativeRelaxation(ira_options).solve(net, lifetime_bound);
    out.status = AnytimeStatus::kOptimal;
    out.stats = ira.stats;
    // Prefer the IRA tree; fall back to a bound-meeting incumbent only when
    // the direct-mode relaxation overshot LC and the incumbent did not.
    if (!ira.meets_bound && incumbent.valid && incumbent.meets_bound) {
      out.tree = incumbent.tree;
      out.from_incumbent = true;
    } else {
      out.tree = ira.tree;
    }
    fill_tree_metrics(net, lifetime_bound, out);
    out.dual_bound = certified_bound();
    out.gap = std::max(out.cost - out.dual_bound, 0.0);
    std::ostringstream os;
    os << "IRA converged after " << ira.stats.outer_iterations
       << " outer iterations";
    if (out.from_incumbent) {
      os << "; returned the " << incumbent.origin
         << " incumbent (IRA tree missed the bound, incumbent meets it)";
    }
    out.message = os.str();
    return out;
  } catch (const InfeasibleError& e) {
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  } catch (const BudgetExhaustedError& e) {
    // Lazily registered: budget-free runs never add this key, keeping the
    // stock bench metric documents byte-identical.
    static metrics::Counter& budget_hits =
        metrics::counter("solver.budget_hits");
    budget_hits.add();
    const bool cancelled =
        options.budget != nullptr && options.budget->cancelled();
    out.status = cancelled ? AnytimeStatus::kCancelled
                           : AnytimeStatus::kFeasibleBudgetExhausted;
    if (!incumbent.valid) {
      // No seeded tree at all (disconnected topology): the instance is not
      // a budget problem, re-run the diagnosis as an infeasibility.
      out.status = AnytimeStatus::kInfeasible;
      out.message = std::string("budget exhausted with no incumbent (") +
                    e.what() + ")";
      return out;
    }
    out.tree = incumbent.tree;
    out.from_incumbent = true;
    fill_tree_metrics(net, lifetime_bound, out);
    out.dual_bound = certified_bound();
    out.gap = std::max(out.cost - out.dual_bound, 0.0);
    std::ostringstream os;
    os << (cancelled ? "cancelled" : "budget exhausted") << " ("
       << e.what() << "); returning the " << incumbent.origin
       << " incumbent, certified gap " << out.gap << " nats";
    out.message = os.str();
    return out;
  }
}

}  // namespace mrlc::core
