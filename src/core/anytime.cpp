#include "core/anytime.hpp"

#include <algorithm>
#include <sstream>

#include "baselines/aaml.hpp"
#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

const char* to_string(AnytimeStatus status) noexcept {
  switch (status) {
    case AnytimeStatus::kOptimal:
      return "optimal";
    case AnytimeStatus::kFeasibleBudgetExhausted:
      return "feasible_budget_exhausted";
    case AnytimeStatus::kInfeasible:
      return "infeasible";
    case AnytimeStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

/// The seeded incumbent: a feasible tree obtained without any LP work.
struct Incumbent {
  bool valid = false;
  wsn::AggregationTree tree;
  double cost = 0.0;
  bool meets_bound = false;
  const char* origin = "none";
};

/// Greedy (degree-capped Kruskal) and the plain MST both cost O(E log E);
/// the cheapest candidate that meets the bound wins (the MST, when it
/// qualifies, is unbeatable — it is the global cost minimum).  When
/// neither meets LC the greedy tree is kept anyway: its cap relaxations
/// chase the bound, so it is the best-effort fallback, reported honestly
/// through `meets_bound = false`.
Incumbent seed_incumbent(const wsn::Network& net, double lifetime_bound) {
  Incumbent best;
  try {
    const baselines::MstResult mst = baselines::mst_baseline(net);
    best.valid = true;
    best.tree = mst.tree;
    best.cost = mst.cost;
    best.meets_bound = mst.lifetime >= lifetime_bound * (1.0 - 1e-12);
    best.origin = "mst";
  } catch (const InfeasibleError&) {
    // Disconnected topology: the IRA tier will throw the real diagnosis.
  }
  if (!best.meets_bound) {
    try {
      const baselines::GreedyMrlcResult greedy =
          baselines::greedy_mrlc(net, lifetime_bound);
      if (greedy.meets_bound || !best.valid) {
        best.valid = true;
        best.tree = greedy.tree;
        best.cost = greedy.cost;
        best.meets_bound = greedy.meets_bound;
        best.origin = "greedy";
      }
    } catch (const InfeasibleError&) {
      // Greedy stuck; keep whatever we have.
    }
  }
  return best;
}

void fill_tree_metrics(const wsn::Network& net, double lifetime_bound,
                       AnytimeResult& out) {
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.objective = out.cost;
  out.meets_bound = out.lifetime >= lifetime_bound * (1.0 - 1e-12);
}

/// Variant-flavoured incumbent: the lexicographic-AAML tree for
/// max_lifetime (always a spanning tree, and the strongest LP-free
/// lifetime heuristic in the repo); for the minimizing variants the MST
/// under the variant's own edge costs — the unconstrained objective
/// optimum, so when it satisfies the variant's rows the solve only has to
/// certify it — with the degree-capped greedy tree as the etx fallback.
Incumbent seed_variant_incumbent(const ProblemVariant& variant,
                                 const wsn::Network& net, double bound) {
  Incumbent best;
  if (variant.maximizing()) {
    baselines::AamlOptions aaml_options;
    aaml_options.mode = baselines::AamlSearchMode::kLexicographic;
    aaml_options.initial = baselines::AamlInitialTree::kBfs;
    const baselines::AamlResult aaml = baselines::aaml(net, aaml_options);
    best.valid = true;
    best.tree = aaml.tree;
    best.cost = aaml.lifetime;
    best.meets_bound = aaml.lifetime >= bound * (1.0 - 1e-12);
    best.origin = "aaml";
    return best;
  }
  graph::Graph reweighted = net.topology();
  for (graph::EdgeId id : reweighted.alive_edge_ids()) {
    reweighted.set_weight(id, variant.edge_cost(net, id));
  }
  const auto mst = graph::prim_mst(reweighted, net.sink());
  if (mst.has_value()) {
    best.valid = true;
    best.tree = wsn::AggregationTree::from_edges(net, mst->edges);
    best.cost = variant.tree_objective(net, best.tree);
    best.meets_bound = variant.tree_feasible(net, best.tree, bound);
    best.origin = "mst";
  }
  if (!best.meets_bound) {
    try {
      const baselines::GreedyMrlcResult greedy =
          baselines::greedy_mrlc(net, bound);
      const bool feasible = variant.tree_feasible(net, greedy.tree, bound);
      if (feasible || !best.valid) {
        best.valid = true;
        best.tree = greedy.tree;
        best.cost = variant.tree_objective(net, greedy.tree);
        best.meets_bound = feasible;
        best.origin = "greedy";
      }
    } catch (const InfeasibleError&) {
      // Greedy stuck; keep whatever we have.
    }
  }
  return best;
}

/// The non-mrlc anytime path: same typed contract, variant objective
/// units.  Kept separate so the mrlc path below stays bit-identical.
AnytimeResult solve_anytime_variant(const wsn::Network& net, double bound,
                                    const AnytimeOptions& options) {
  trace::ScopedPhase phase("anytime");
  MRLC_REQUIRE(bound > 0.0, "lifetime bound must be positive");
  const ProblemVariant& variant = problem_variant(options.variant);
  AnytimeResult out;
  out.variant = options.variant;
  try {
    net.validate();
  } catch (const InfeasibleError& e) {
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  }

  const Incumbent incumbent = seed_variant_incumbent(variant, net, bound);

  IraOptions ira_options = options.ira;
  ira_options.bound_mode = BoundMode::kDirect;
  ira_options.budget = options.budget;
  IraProgress progress;
  ira_options.progress = &progress;

  const bool maximizing = variant.maximizing();
  auto minimizing_dual = [&]() {
    // Valid for the same reason as mrlc: variant edge costs are >= 0
    // (pinned by the property battery), so 0 always bounds from below and
    // a completed first direct-mode LP round is tighter.
    return progress.first_lp_valid ? std::max(progress.first_lp_objective, 0.0)
                                   : 0.0;
  };
  auto finish_tree = [&](const wsn::AggregationTree& tree) {
    out.tree = tree;
    out.cost = wsn::tree_cost(net, out.tree);
    out.reliability = wsn::tree_reliability(net, out.tree);
    out.lifetime = wsn::network_lifetime(net, out.tree);
    out.objective = variant.tree_objective(net, out.tree);
    out.meets_bound = variant.tree_feasible(net, out.tree, bound);
  };

  try {
    const VariantResult res = solve_variant(options.variant, net, bound,
                                            ira_options);
    out.status = AnytimeStatus::kOptimal;
    out.stats = res.stats;
    if (!res.meets_bound && incumbent.valid && incumbent.meets_bound) {
      finish_tree(incumbent.tree);
      out.from_incumbent = true;
    } else {
      finish_tree(res.tree);
    }
    // max_lifetime certifies from above (internal_bound is the top
    // LP-feasible rung); the minimizing variants from below.
    out.dual_bound = maximizing ? res.internal_bound : minimizing_dual();
    out.gap = maximizing ? std::max(out.dual_bound - out.objective, 0.0)
                         : std::max(out.objective - out.dual_bound, 0.0);
    std::ostringstream os;
    os << variant.name() << " solve converged after "
       << res.stats.outer_iterations << " outer iterations";
    if (out.from_incumbent) {
      os << "; returned the " << incumbent.origin
         << " incumbent (solver tree missed the bound, incumbent meets it)";
    }
    out.message = os.str();
    return out;
  } catch (const InfeasibleError& e) {
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  } catch (const BudgetExhaustedError& e) {
    static metrics::Counter& budget_hits =
        metrics::counter("solver.budget_hits");
    budget_hits.add();
    const bool cancelled =
        options.budget != nullptr && options.budget->cancelled();
    out.status = cancelled ? AnytimeStatus::kCancelled
                           : AnytimeStatus::kFeasibleBudgetExhausted;
    if (!incumbent.valid) {
      out.status = AnytimeStatus::kInfeasible;
      out.message = std::string("budget exhausted with no incumbent (") +
                    e.what() + ")";
      return out;
    }
    finish_tree(incumbent.tree);
    out.from_incumbent = true;
    // No completed scan to certify against; fall back to the weakest sound
    // bound in each direction (the ladder top is the lifetime any tree can
    // at best reach — its richest node with zero children).
    out.dual_bound =
        maximizing ? lifetime_candidates(net).back() : minimizing_dual();
    out.gap = maximizing ? std::max(out.dual_bound - out.objective, 0.0)
                         : std::max(out.objective - out.dual_bound, 0.0);
    std::ostringstream os;
    os << (cancelled ? "cancelled" : "budget exhausted") << " (" << e.what()
       << "); returning the " << incumbent.origin
       << " incumbent, certified gap " << out.gap;
    out.message = os.str();
    return out;
  }
}

}  // namespace

AnytimeResult solve_anytime(const wsn::Network& net, double lifetime_bound,
                            const AnytimeOptions& options) {
  if (options.variant != VariantId::kMrlc) {
    return solve_anytime_variant(net, lifetime_bound, options);
  }
  trace::ScopedPhase phase("anytime");
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  try {
    net.validate();
  } catch (const InfeasibleError& e) {
    // Disconnected topology: report through the typed status like every
    // other structural infeasibility (per-element data problems still
    // throw invalid_argument — those are caller bugs, not instances).
    AnytimeResult out;
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  }

  const Incumbent incumbent = seed_incumbent(net, lifetime_bound);

  IraOptions ira_options = options.ira;
  ira_options.bound_mode = BoundMode::kDirect;  // see AnytimeOptions
  ira_options.budget = options.budget;
  IraProgress progress;
  ira_options.progress = &progress;

  AnytimeResult out;
  auto certified_bound = [&]() {
    // Any completed first-iteration LP round bounds OPT(LC) from below in
    // kDirect mode; with no completed round, 0 is valid (costs -ln q >= 0).
    return progress.first_lp_valid ? std::max(progress.first_lp_objective, 0.0)
                                   : 0.0;
  };

  try {
    const IraResult ira =
        IterativeRelaxation(ira_options).solve(net, lifetime_bound);
    out.status = AnytimeStatus::kOptimal;
    out.stats = ira.stats;
    // Prefer the IRA tree; fall back to a bound-meeting incumbent only when
    // the direct-mode relaxation overshot LC and the incumbent did not.
    if (!ira.meets_bound && incumbent.valid && incumbent.meets_bound) {
      out.tree = incumbent.tree;
      out.from_incumbent = true;
    } else {
      out.tree = ira.tree;
    }
    fill_tree_metrics(net, lifetime_bound, out);
    out.dual_bound = certified_bound();
    out.gap = std::max(out.cost - out.dual_bound, 0.0);
    std::ostringstream os;
    os << "IRA converged after " << ira.stats.outer_iterations
       << " outer iterations";
    if (out.from_incumbent) {
      os << "; returned the " << incumbent.origin
         << " incumbent (IRA tree missed the bound, incumbent meets it)";
    }
    out.message = os.str();
    return out;
  } catch (const InfeasibleError& e) {
    out.status = AnytimeStatus::kInfeasible;
    out.message = e.what();
    return out;
  } catch (const BudgetExhaustedError& e) {
    // Lazily registered: budget-free runs never add this key, keeping the
    // stock bench metric documents byte-identical.
    static metrics::Counter& budget_hits =
        metrics::counter("solver.budget_hits");
    budget_hits.add();
    const bool cancelled =
        options.budget != nullptr && options.budget->cancelled();
    out.status = cancelled ? AnytimeStatus::kCancelled
                           : AnytimeStatus::kFeasibleBudgetExhausted;
    if (!incumbent.valid) {
      // No seeded tree at all (disconnected topology): the instance is not
      // a budget problem, re-run the diagnosis as an infeasibility.
      out.status = AnytimeStatus::kInfeasible;
      out.message = std::string("budget exhausted with no incumbent (") +
                    e.what() + ")";
      return out;
    }
    out.tree = incumbent.tree;
    out.from_incumbent = true;
    fill_tree_metrics(net, lifetime_bound, out);
    out.dual_bound = certified_bound();
    out.gap = std::max(out.cost - out.dual_bound, 0.0);
    std::ostringstream os;
    os << (cancelled ? "cancelled" : "budget exhausted") << " ("
       << e.what() << "); returning the " << incumbent.origin
       << " incumbent, certified gap " << out.gap << " nats";
    out.message = os.str();
    return out;
  }
}

}  // namespace mrlc::core
