#include "core/separation.hpp"

#include <algorithm>
#include <set>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "graph/maxflow.hpp"
#include "graph/traversal.hpp"

namespace mrlc::core {

double subset_internal_weight(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              const std::vector<graph::VertexId>& subset) {
  std::vector<bool> in_set(static_cast<std::size_t>(g.vertex_count()), false);
  for (graph::VertexId v : subset) in_set[static_cast<std::size_t>(v)] = true;
  double total = 0.0;
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    if (in_set[static_cast<std::size_t>(e.u)] && in_set[static_cast<std::size_t>(e.v)]) {
      total += edge_values[static_cast<std::size_t>(id)];
    }
  }
  return total;
}

SeparationCut min_subtour_cut(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              graph::VertexId forced_in, graph::VertexId forced_out) {
  MRLC_REQUIRE(forced_in != forced_out, "forced vertices must differ");
  const int n = g.vertex_count();
  MRLC_REQUIRE(static_cast<int>(edge_values.size()) == g.edge_count(),
               "one value per edge");

  // Fractional degree d_v = x(δ(v)); node weight w_v = d_v - 2.
  std::vector<double> degree(static_cast<std::size_t>(n), 0.0);
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    degree[static_cast<std::size_t>(e.u)] += edge_values[static_cast<std::size_t>(id)];
    degree[static_cast<std::size_t>(e.v)] += edge_values[static_cast<std::size_t>(id)];
  }

  // Auxiliary network: nodes 0..n-1 plus source n, sink n+1.
  const int source = n;
  const int sink = n + 1;
  graph::MaxFlow flow(n + 2);
  constexpr double kForce = 1e12;
  double positive_weight_total = 0.0;
  for (graph::VertexId v = 0; v < n; ++v) {
    const double w = degree[static_cast<std::size_t>(v)] - 2.0;
    if (w > 0.0) {
      flow.add_arc(source, v, w);
      positive_weight_total += w;
    } else if (w < 0.0) {
      flow.add_arc(v, sink, -w);
    }
  }
  flow.add_arc(source, forced_in, kForce);
  flow.add_arc(forced_out, sink, kForce);
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    const double x = edge_values[static_cast<std::size_t>(id)];
    if (x > 0.0) flow.add_undirected(e.u, e.v, x);
  }

  static metrics::Counter& maxflow_calls =
      metrics::counter("separation.maxflow_calls");
  maxflow_calls.add();
  const double cut = flow.max_flow(source, sink);
  SeparationCut out;
  // min over S (u in, r out) of f(S) = cut - sum_v max(w_v, 0).
  out.f_value = cut - positive_weight_total;
  for (int v : flow.min_cut_source_side(source)) {
    if (v < n) out.subset.push_back(v);
  }
  std::sort(out.subset.begin(), out.subset.end());
  return out;
}

std::vector<std::vector<graph::VertexId>> find_violated_subtours(
    const graph::Graph& g, const std::vector<double>& edge_values, double tolerance,
    SeparationMode mode) {
  trace::ScopedPhase phase("separation");
  static metrics::Counter& calls = metrics::counter("separation.calls");
  static metrics::Counter& violated_sets =
      metrics::counter("separation.violated_sets");
  calls.add();
  const int n = g.vertex_count();
  std::vector<std::vector<graph::VertexId>> result;
  if (n < 3) return result;  // |S| = 2 rows are the x_e <= 1 bounds

  std::set<std::vector<graph::VertexId>> seen;
  auto consider = [&](std::vector<graph::VertexId> subset) {
    if (subset.size() < 2 || static_cast<int>(subset.size()) >= n) return;
    const double internal = subset_internal_weight(g, edge_values, subset);
    if (internal <= static_cast<double>(subset.size()) - 1.0 + tolerance) return;
    std::sort(subset.begin(), subset.end());
    if (seen.insert(subset).second) {
      violated_sets.add();
      result.push_back(subset);
    }
  };

  // Stage 1: connected components of the fractional support.
  {
    std::vector<bool> keep(static_cast<std::size_t>(g.edge_count()), false);
    for (graph::EdgeId id : g.alive_edge_ids()) {
      keep[static_cast<std::size_t>(id)] =
          edge_values[static_cast<std::size_t>(id)] > tolerance;
    }
    const graph::Graph support = g.filtered(keep);
    const graph::Components comps = graph::connected_components(support);
    if (comps.count > 1) {
      std::vector<std::vector<graph::VertexId>> members(
          static_cast<std::size_t>(comps.count));
      for (graph::VertexId v = 0; v < n; ++v) {
        members[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])]
            .push_back(v);
      }
      for (auto& subset : members) consider(std::move(subset));
    }
    if (!result.empty()) return result;
  }
  if (mode == SeparationMode::kHeuristicOnly) return result;

  // Stage 2: exact Padberg–Wolsey sweep.  Fix r = 0; any proper nonempty S
  // either avoids r (forced_in = u, forced_out = r) or contains it
  // (forced_in = r, forced_out = u).
  //
  // The candidate (u, u_inside) pairs are independent max-flow problems, so
  // they are evaluated in constant-size batches on the thread pool and the
  // results merged serially in candidate order.  The early-exit ("enough
  // cuts, stop sweeping") is only checked at batch boundaries; because the
  // batch size is a constant — not a function of the pool width — the set of
  // candidates evaluated, the cuts returned, and the
  // `separation.maxflow_calls` counter are identical for every thread count.
  const graph::VertexId r = 0;
  struct Candidate {
    graph::VertexId u;
    bool u_inside;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(static_cast<std::size_t>(2 * (n - 1)));
  for (graph::VertexId u = 1; u < n; ++u) {
    candidates.push_back({u, true});
    candidates.push_back({u, false});
  }

  constexpr std::size_t kBatch = 8;  // thread-count independent by design
  std::vector<SeparationCut> slots(kBatch);
  for (std::size_t start = 0; start < candidates.size(); start += kBatch) {
    const std::size_t end = std::min(start + kBatch, candidates.size());
    const int batch_size = static_cast<int>(end - start);
    default_pool().for_each(batch_size, [&](int i) {
      const Candidate& c = candidates[start + static_cast<std::size_t>(i)];
      slots[static_cast<std::size_t>(i)] =
          c.u_inside ? min_subtour_cut(g, edge_values, c.u, r)
                     : min_subtour_cut(g, edge_values, r, c.u);
    });
    for (int i = 0; i < batch_size; ++i) {
      SeparationCut& cut = slots[static_cast<std::size_t>(i)];
      if (cut.f_value < 2.0 - tolerance) consider(std::move(cut.subset));
    }
    // A couple of cuts per round is enough to make progress; adding every
    // violated set found by the sweep bloats the LP with near-duplicates.
    if (result.size() >= 4) break;
  }
  return result;
}

}  // namespace mrlc::core
