#include "core/separation.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/faultpoint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "graph/maxflow.hpp"
#include "graph/traversal.hpp"

namespace mrlc::core {

double subset_internal_weight(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              const std::vector<graph::VertexId>& subset) {
  std::vector<bool> in_set(static_cast<std::size_t>(g.vertex_count()), false);
  for (graph::VertexId v : subset) in_set[static_cast<std::size_t>(v)] = true;
  double total = 0.0;
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    if (in_set[static_cast<std::size_t>(e.u)] && in_set[static_cast<std::size_t>(e.v)]) {
      total += edge_values[static_cast<std::size_t>(id)];
    }
  }
  return total;
}

void SubtourCutPool::remember(const std::vector<graph::VertexId>& subset) {
  std::vector<graph::VertexId> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  if (!seen_.insert(sorted).second) return;
  for (graph::VertexId v : sorted) {
    if (static_cast<std::size_t>(v) >= appearances_.size()) {
      appearances_.resize(static_cast<std::size_t>(v) + 1, 0);
    }
    ++appearances_[static_cast<std::size_t>(v)];
  }
  sets_.push_back(std::move(sorted));
  evict_to_capacity();
}

void SubtourCutPool::set_capacity(std::size_t max_sets) {
  capacity_ = max_sets;
  evict_to_capacity();
}

void SubtourCutPool::evict_to_capacity() {
  if (capacity_ == 0) return;
  while (sets_.size() > capacity_) {
    const std::vector<graph::VertexId>& oldest = sets_.front();
    for (graph::VertexId v : oldest) {
      --appearances_[static_cast<std::size_t>(v)];
    }
    seen_.erase(oldest);
    sets_.erase(sets_.begin());
  }
}

std::vector<graph::VertexId> SubtourCutPool::hot_vertices(int vertex_count) const {
  std::vector<graph::VertexId> order(static_cast<std::size_t>(vertex_count));
  for (graph::VertexId v = 0; v < vertex_count; ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  auto count_of = [&](graph::VertexId v) -> long long {
    return static_cast<std::size_t>(v) < appearances_.size()
               ? appearances_[static_cast<std::size_t>(v)]
               : 0;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::VertexId a, graph::VertexId b) {
                     return count_of(a) > count_of(b);
                   });
  return order;
}

namespace {

constexpr double kForce = 1e12;

/// The Padberg–Wolsey auxiliary network for one fractional point, built
/// once and reused for a whole sweep of forced-in vertices: every vertex
/// gets a zero-capacity source arc up front, and per candidate exactly that
/// arc is raised to `kForce`, the flow is run, and the capacities are
/// restored — no per-candidate construction.
class SubtourSweepNetwork {
 public:
  SubtourSweepNetwork(const graph::Graph& g, const std::vector<double>& edge_values)
      : n_(g.vertex_count()), source_(n_), sink_(n_ + 1), flow_(n_ + 2) {
    // Fractional degree d_v = x(δ(v)); node weight w_v = d_v - 2.
    std::vector<double> degree(static_cast<std::size_t>(n_), 0.0);
    for (graph::EdgeId id : g.alive_edge_ids()) {
      const graph::Edge& e = g.edge(id);
      degree[static_cast<std::size_t>(e.u)] += edge_values[static_cast<std::size_t>(id)];
      degree[static_cast<std::size_t>(e.v)] += edge_values[static_cast<std::size_t>(id)];
    }
    force_arc_.assign(static_cast<std::size_t>(n_), -1);
    for (graph::VertexId v = 0; v < n_; ++v) {
      const double w = degree[static_cast<std::size_t>(v)] - 2.0;
      if (w > 0.0) {
        flow_.add_arc(source_, v, w);
        positive_weight_total_ += w;
      } else if (w < 0.0) {
        flow_.add_arc(v, sink_, -w);
      }
      force_arc_[static_cast<std::size_t>(v)] = flow_.add_arc(source_, v, 0.0);
    }
    for (graph::EdgeId id : g.alive_edge_ids()) {
      const graph::Edge& e = g.edge(id);
      const double x = edge_values[static_cast<std::size_t>(id)];
      if (x > 0.0) flow_.add_undirected(e.u, e.v, x);
    }
  }

  /// min f(S) over all S containing `forced_in` (one max-flow).
  SeparationCut min_cut_containing(graph::VertexId forced_in) {
    static metrics::Counter& maxflow_calls =
        metrics::counter("separation.maxflow_calls");
    maxflow_calls.add();
    flow_.set_arc_capacity(source_, force_arc_[static_cast<std::size_t>(forced_in)],
                           kForce);
    const double cut = flow_.max_flow(source_, sink_);
    SeparationCut out;
    out.f_value = cut - positive_weight_total_;
    for (int v : flow_.min_cut_source_side(source_)) {
      if (v < n_) out.subset.push_back(v);
    }
    std::sort(out.subset.begin(), out.subset.end());
    flow_.set_arc_capacity(source_, force_arc_[static_cast<std::size_t>(forced_in)],
                           0.0);
    flow_.reset();
    return out;
  }

 private:
  int n_;
  int source_;
  int sink_;
  graph::MaxFlow flow_;
  std::vector<int> force_arc_;
  double positive_weight_total_ = 0.0;
};

}  // namespace

SeparationCut min_subtour_cut(const graph::Graph& g,
                              const std::vector<double>& edge_values,
                              graph::VertexId forced_in, graph::VertexId forced_out) {
  MRLC_REQUIRE(forced_in != forced_out, "forced vertices must differ");
  const int n = g.vertex_count();
  MRLC_REQUIRE(static_cast<int>(edge_values.size()) == g.edge_count(),
               "one value per edge");

  // Fractional degree d_v = x(δ(v)); node weight w_v = d_v - 2.
  std::vector<double> degree(static_cast<std::size_t>(n), 0.0);
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    degree[static_cast<std::size_t>(e.u)] += edge_values[static_cast<std::size_t>(id)];
    degree[static_cast<std::size_t>(e.v)] += edge_values[static_cast<std::size_t>(id)];
  }

  // Auxiliary network: nodes 0..n-1 plus source n, sink n+1.
  const int source = n;
  const int sink = n + 1;
  graph::MaxFlow flow(n + 2);
  double positive_weight_total = 0.0;
  for (graph::VertexId v = 0; v < n; ++v) {
    const double w = degree[static_cast<std::size_t>(v)] - 2.0;
    if (w > 0.0) {
      flow.add_arc(source, v, w);
      positive_weight_total += w;
    } else if (w < 0.0) {
      flow.add_arc(v, sink, -w);
    }
  }
  flow.add_arc(source, forced_in, kForce);
  flow.add_arc(forced_out, sink, kForce);
  for (graph::EdgeId id : g.alive_edge_ids()) {
    const graph::Edge& e = g.edge(id);
    const double x = edge_values[static_cast<std::size_t>(id)];
    if (x > 0.0) flow.add_undirected(e.u, e.v, x);
  }

  static metrics::Counter& maxflow_calls =
      metrics::counter("separation.maxflow_calls");
  maxflow_calls.add();
  const double cut = flow.max_flow(source, sink);
  SeparationCut out;
  // min over S (u in, r out) of f(S) = cut - sum_v max(w_v, 0).
  out.f_value = cut - positive_weight_total;
  for (int v : flow.min_cut_source_side(source)) {
    if (v < n) out.subset.push_back(v);
  }
  std::sort(out.subset.begin(), out.subset.end());
  return out;
}

SeparationCut min_subtour_cut_containing(const graph::Graph& g,
                                         const std::vector<double>& edge_values,
                                         graph::VertexId forced_in) {
  MRLC_REQUIRE(static_cast<int>(edge_values.size()) == g.edge_count(),
               "one value per edge");
  MRLC_REQUIRE(forced_in >= 0 && forced_in < g.vertex_count(),
               "forced vertex out of range");
  SubtourSweepNetwork network(g, edge_values);
  return network.min_cut_containing(forced_in);
}

namespace {

/// Always-on validation of a set coming out of the cut pool: sorted,
/// strictly increasing (no duplicates), every vertex in range, |S| >= 2.
/// The pool stores sets in exactly this form, so a failure means the
/// memory was corrupted after `remember` — the caller falls back to the
/// pristine source rather than feeding a bad row to the LP.
bool pooled_set_ok(const std::vector<graph::VertexId>& subset, int n) {
  if (subset.size() < 2) return false;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (subset[i] < 0 || subset[i] >= n) return false;
    if (i > 0 && subset[i] <= subset[i - 1]) return false;
  }
  return true;
}

}  // namespace

std::vector<std::vector<graph::VertexId>> find_violated_subtours(
    const graph::Graph& g, const std::vector<double>& edge_values, double tolerance,
    SeparationMode mode, SubtourCutPool* pool, Budget* budget) {
  trace::ScopedPhase phase("separation");
  static metrics::Counter& calls = metrics::counter("separation.calls");
  static metrics::Counter& violated_sets =
      metrics::counter("separation.violated_sets");
  static metrics::Counter& pool_hits = metrics::counter("separation.pool_hits");
  calls.add();
  const int n = g.vertex_count();
  std::vector<std::vector<graph::VertexId>> result;
  if (n < 3) return result;  // |S| = 2 rows are the x_e <= 1 bounds

  std::set<std::vector<graph::VertexId>> seen;
  auto consider = [&](std::vector<graph::VertexId> subset) {
    if (subset.size() < 2 || static_cast<int>(subset.size()) >= n) return false;
    const double internal = subset_internal_weight(g, edge_values, subset);
    if (internal <= static_cast<double>(subset.size()) - 1.0 + tolerance) {
      return false;
    }
    std::sort(subset.begin(), subset.end());
    if (seen.insert(subset).second) {
      violated_sets.add();
      result.push_back(subset);
      return true;
    }
    return false;
  };
  // Every set handed back also enters the pool so later calls can recheck
  // it without a flow.
  auto finish = [&]() {
    if (pool) {
      for (const auto& subset : result) pool->remember(subset);
    }
    return result;
  };

  // Stage 1: connected components of the fractional support.
  {
    std::vector<bool> keep(static_cast<std::size_t>(g.edge_count()), false);
    for (graph::EdgeId id : g.alive_edge_ids()) {
      keep[static_cast<std::size_t>(id)] =
          edge_values[static_cast<std::size_t>(id)] > tolerance;
    }
    const graph::Graph support = g.filtered(keep);
    const graph::Components comps = graph::connected_components(support);
    if (comps.count > 1) {
      std::vector<std::vector<graph::VertexId>> members(
          static_cast<std::size_t>(comps.count));
      for (graph::VertexId v = 0; v < n; ++v) {
        members[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])]
            .push_back(v);
      }
      for (auto& subset : members) consider(std::move(subset));
    }
    if (!result.empty()) return finish();
  }

  // Stage 1.5: recheck pooled sets — an O(|E|) scan per set against zero
  // max-flows.  Sets that separated an earlier fractional point of the
  // same instance frequently separate the next one too.
  if (pool) {
    for (const auto& subset : pool->sets()) {
      std::vector<graph::VertexId> candidate = subset;
      // Fault point: the pooled memory hands back a corrupted set (as a
      // buggy cross-iteration cache would).
      if (fault::fire("cutpool.corrupt") && !candidate.empty()) {
        candidate.push_back(candidate.front());  // duplicate => invalid
      }
      if (!pooled_set_ok(candidate, n)) {
        // Audited recovery: re-read the pristine pooled set; if even the
        // source fails validation, skip it — a dropped recheck only costs
        // a max-flow later, never a wrong row.
        candidate = subset;
        if (!pooled_set_ok(candidate, n)) continue;
        fault::note_recovered("cutpool.corrupt");
      }
      if (consider(std::move(candidate))) {
        pool_hits.add();
        if (result.size() >= 4) break;
      }
    }
    if (!result.empty()) return finish();
  }
  if (mode == SeparationMode::kHeuristicOnly) return finish();

  // Stage 2: exact Padberg–Wolsey sweep.  With f(S) = 2(|S| - x(E(S))), a
  // point on the span hyperplane x(E(V)) = n - 1 has f(V) = 2 exactly, so
  // min_{S ∋ u} f(S) < 2 iff some proper S ∋ u is violated — one max-flow
  // per vertex, half the classic two-orientation sweep.  Off the span
  // hyperplane (x(E(V)) > n - 1: possible for arbitrary caller-supplied
  // points) S = V could mask proper violations, so fall back to the classic
  // sweep with a forced-out vertex.
  double total_weight = 0.0;
  for (graph::EdgeId id : g.alive_edge_ids()) {
    total_weight += edge_values[static_cast<std::size_t>(id)];
  }
  const bool on_span_hyperplane =
      total_weight <= static_cast<double>(n - 1) + tolerance;

  struct Candidate {
    graph::VertexId u;
    bool u_inside;  ///< classic sweep only: u forced in (else forced out)
  };
  std::vector<Candidate> candidates;
  if (on_span_hyperplane) {
    // Sweep order: historically hot vertices first (identity order for an
    // empty/absent pool) so the early exit below triggers sooner.  The
    // order is a deterministic function of the pool contents, which are in
    // turn deterministic — thread counts never change the candidate set.
    const std::vector<graph::VertexId> order =
        pool ? pool->hot_vertices(n) : std::vector<graph::VertexId>{};
    candidates.reserve(static_cast<std::size_t>(n));
    for (graph::VertexId i = 0; i < n; ++i) {
      candidates.push_back({pool ? order[static_cast<std::size_t>(i)] : i, true});
    }
  } else {
    // Classic sweep: fix r = 0; any proper nonempty S either avoids r
    // (forced_in = u, forced_out = r) or contains it (forced_in = r,
    // forced_out = u).
    candidates.reserve(static_cast<std::size_t>(2 * (n - 1)));
    for (graph::VertexId u = 1; u < n; ++u) {
      candidates.push_back({u, true});
      candidates.push_back({u, false});
    }
  }

  // The candidates are independent max-flow problems, evaluated in
  // constant-size batches on the thread pool and merged serially in
  // candidate order.  The early-exit ("enough cuts, stop sweeping") is only
  // checked at batch boundaries; because the batch size is a constant — not
  // a function of the pool width — the set of candidates evaluated, the
  // cuts returned, and the `separation.maxflow_calls` counter are identical
  // for every thread count.
  constexpr std::size_t kBatch = 8;  // thread-count independent by design
  const graph::VertexId r = 0;
  std::vector<SeparationCut> slots(kBatch);
  // One reusable network per batch slot: capacities are reset between
  // candidates instead of rebuilding the arc lists (slot i only ever runs
  // one candidate at a time, so the parallel batch stays race-free).
  std::vector<SubtourSweepNetwork> networks;
  if (on_span_hyperplane) {
    networks.reserve(std::min(kBatch, candidates.size()));
    for (std::size_t i = 0; i < std::min(kBatch, candidates.size()); ++i) {
      networks.emplace_back(g, edge_values);
    }
  }
  std::vector<char> failed(kBatch, 0);
  for (std::size_t start = 0; start < candidates.size(); start += kBatch) {
    // Deterministic budget checkpoint: batch boundaries are a serial
    // function of the candidate list, never of thread scheduling.  Cutting
    // the sweep short returns whatever was found so far; the caller treats
    // an empty result under an exhausted budget as "not certified".
    if (budget != nullptr && budget->exhausted()) break;
    const std::size_t end = std::min(start + kBatch, candidates.size());
    const int batch_size = static_cast<int>(end - start);
    std::fill(failed.begin(), failed.end(), 0);
    default_pool().for_each(batch_size, [&](int i) {
      // Fault point: a worker task dies outright.  No recovery here — the
      // pool rethrows from the smallest failing index, and the error
      // surfaces as a typed internal failure (exit code 5 in mrlc_solve).
      if (fault::fire("parallel.task_fail")) {
        throw std::runtime_error(
            "injected: thread-pool task failure (fault parallel.task_fail)");
      }
      // Fault point: one max-flow evaluation fails (fired before the solve
      // so the retry below keeps separation.maxflow_calls at one per
      // candidate).  The slot is marked and recomputed serially at merge.
      if (fault::fire("separation.flow_fail")) {
        failed[static_cast<std::size_t>(i)] = 1;
        return;
      }
      const Candidate& c = candidates[start + static_cast<std::size_t>(i)];
      if (on_span_hyperplane) {
        slots[static_cast<std::size_t>(i)] =
            networks[static_cast<std::size_t>(i)].min_cut_containing(c.u);
      } else {
        slots[static_cast<std::size_t>(i)] =
            c.u_inside ? min_subtour_cut(g, edge_values, c.u, r)
                       : min_subtour_cut(g, edge_values, r, c.u);
      }
    });
    // One budget unit per candidate, charged at this serial merge point so
    // exhaustion happens at the same sweep position for every thread count.
    if (budget != nullptr) budget->charge(batch_size);
    for (int i = 0; i < batch_size; ++i) {
      SeparationCut& cut = slots[static_cast<std::size_t>(i)];
      if (failed[static_cast<std::size_t>(i)] != 0) {
        // Audited recovery: rebuild the auxiliary network from the graph
        // and re-run the candidate serially.  The retried flow is exact,
        // so a recovered sweep returns the same cuts as a clean one.
        const Candidate& c = candidates[start + static_cast<std::size_t>(i)];
        if (on_span_hyperplane) {
          SubtourSweepNetwork retry(g, edge_values);
          cut = retry.min_cut_containing(c.u);
        } else {
          cut = c.u_inside ? min_subtour_cut(g, edge_values, c.u, r)
                           : min_subtour_cut(g, edge_values, r, c.u);
        }
        fault::note_recovered("separation.flow_fail");
      }
      if (cut.f_value < 2.0 - tolerance) consider(std::move(cut.subset));
    }
    // A couple of cuts per round is enough to make progress; adding every
    // violated set found by the sweep bloats the LP with near-duplicates.
    if (result.size() >= 4) break;
  }
  return finish();
}

}  // namespace mrlc::core
