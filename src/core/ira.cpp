#include "core/ira.hpp"

#include <sstream>

#include "core/variant.hpp"

namespace mrlc::core {

double IterativeRelaxation::strict_bound(const wsn::Network& net,
                                         double lifetime_bound) {
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  const double i_min = net.min_initial_energy();
  const double rx = net.energy_model().rx_joules;
  const double denom = i_min - 2.0 * rx * lifetime_bound;
  if (denom <= 0.0) {
    std::ostringstream os;
    os << "lifetime bound " << lifetime_bound
       << " leaves no relaxation headroom: I_min - 2*Rx*LC = " << denom
       << " <= 0, so the strict bound L' of Algorithm 1 is undefined";
    throw InfeasibleError(os.str());
  }
  return i_min * lifetime_bound / denom;
}

// Algorithm 1 now runs on the shared problem-variant engine: the mrlc
// variant supplies the historical objective, caps, and Line-8 rules, so
// trees, costs, and every counter are bit-identical to the pre-interface
// solver (gated by the ci.sh variant-parity stage).
IraResult IterativeRelaxation::solve(const wsn::Network& net,
                                     double lifetime_bound) const {
  VariantResult res = run_variant_ira(mrlc_variant(options_.bound_mode), net,
                                      lifetime_bound, options_);
  IraResult out{std::move(res.tree), res.cost,          res.reliability,
                res.lifetime,        res.internal_bound, res.meets_bound,
                res.stats};
  return out;
}

}  // namespace mrlc::core
