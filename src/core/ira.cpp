#include "core/ira.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/lp_formulation.hpp"
#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

double IterativeRelaxation::strict_bound(const wsn::Network& net,
                                         double lifetime_bound) {
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  const double i_min = net.min_initial_energy();
  const double rx = net.energy_model().rx_joules;
  const double denom = i_min - 2.0 * rx * lifetime_bound;
  if (denom <= 0.0) {
    std::ostringstream os;
    os << "lifetime bound " << lifetime_bound
       << " leaves no relaxation headroom: I_min - 2*Rx*LC = " << denom
       << " <= 0, so the strict bound L' of Algorithm 1 is undefined";
    throw InfeasibleError(os.str());
  }
  return i_min * lifetime_bound / denom;
}

namespace {

/// Lifetime of v if EVERY remaining support edge incident to it became a
/// tree edge — the paper's E*(L(v)) of Line 8.  Non-sink vertices spend one
/// incident edge on their parent.
double worst_case_lifetime(const wsn::Network& net, const graph::Graph& working,
                           graph::VertexId v) {
  const int support_degree = working.degree(v);
  const int children =
      v == net.sink() ? support_degree : std::max(0, support_degree - 1);
  return net.energy_model().node_lifetime(net.initial_energy(v), children);
}

/// Mode-dependent Line-8 test: may v's lifetime row be dropped?
///
/// * Paper-strict mode: drop when even taking every support edge keeps the
///   lifetime at LC — sound because the LP ran with the stricter L'.
/// * Direct mode: the Singh–Lau rule — drop when the support degree is
///   within 2 of the LC degree cap.  Theorem 2's token argument guarantees
///   such a vertex exists at a fractional extreme point, and it bounds the
///   final violation by two children per node.
bool constraint_removable(const wsn::Network& net, const graph::Graph& working,
                          graph::VertexId v, double lifetime_bound,
                          BoundMode mode) {
  if (mode == BoundMode::kPaperStrict) {
    return worst_case_lifetime(net, working, v) >= lifetime_bound;
  }
  const double children_cap = net.max_children_real(v, lifetime_bound);
  const double degree_cap =
      v == net.sink() ? children_cap : children_cap + 1.0;
  return static_cast<double>(working.degree(v)) <= degree_cap + 2.0 + 1e-9;
}

}  // namespace

IraResult IterativeRelaxation::solve(const wsn::Network& net,
                                     double lifetime_bound) const {
  trace::ScopedPhase phase("ira");
  static metrics::Counter& solves = metrics::counter("ira.solves");
  solves.add();
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  const double strict = options_.bound_mode == BoundMode::kPaperStrict
                            ? strict_bound(net, lifetime_bound)
                            : lifetime_bound;
  const int n = net.node_count();

  graph::Graph working = net.topology();  // IRA mutates a working copy
  std::vector<bool> constrained(static_cast<std::size_t>(n), true);
  int constrained_count = n;

  IraStats stats;
  // One cut pool per solve: violated sets survive across outer iterations
  // (which rebuild the LP and would otherwise forget every subtour row) and
  // are rechecked before any new max-flow sweeps.
  SubtourCutPool cut_pool;
  CutLoopOptions cut_options;
  cut_options.simplex = options_.simplex;
  cut_options.max_rounds = options_.max_cut_rounds;
  cut_options.warm_start = options_.warm_start;
  // The pool is deliberately not gated on warm_start: separation then sees
  // identical fractional points in both modes, so warm vs cold differ only
  // in pivot paths — the invariant the warm/cold property tests pin down.
  // A caller-owned shared pool (the service warm cache) replaces the
  // per-solve one wholesale, so remembered sets outlive this solve.
  cut_options.pool =
      options_.shared_pool != nullptr ? options_.shared_pool : &cut_pool;
  cut_options.budget = options_.budget;

  while (constrained_count > 0) {
    // Deterministic checkpoint: a budget that ran out during the previous
    // iteration's pruning stops here before the next (expensive) LP tier.
    if (options_.budget != nullptr && options_.budget->exhausted()) {
      throw BudgetExhaustedError(
          "budget exhausted between IRA outer iterations");
    }
    ++stats.outer_iterations;

    MrlcLpFormulation formulation(
        working, lifetime_degree_caps(net, constrained, strict));
    const CutLpResult lp_result =
        solve_with_subtour_cuts(formulation, cut_options);
    stats.lp_solves += lp_result.lp_solves;
    stats.simplex_iterations += lp_result.simplex_iterations;
    stats.cuts_added += lp_result.cuts_added;
    stats.cold_fallbacks += lp_result.cold_fallbacks;

    // Publish the dual bound as soon as the first outer iteration has any
    // completed cut-round optimum — every completed round solves a
    // relaxation of the full problem (see IraProgress for the mode caveat),
    // so this is valid even when the same solve is interrupted just after.
    if (options_.progress != nullptr && stats.outer_iterations == 1 &&
        lp_result.has_objective) {
      options_.progress->first_lp_objective = lp_result.objective;
      options_.progress->first_lp_valid = true;
    }

    if (lp_result.status == lp::SolveStatus::kInfeasible) {
      std::ostringstream os;
      os << "no data aggregation tree with lifetime >= " << lifetime_bound
         << " exists (LP(G, L', W) infeasible with L' = " << strict << ")";
      throw InfeasibleError(os.str());
    }
    if (lp_result.status == lp::SolveStatus::kInterrupted) {
      std::ostringstream os;
      os << "budget exhausted inside the cutting-plane loop (outer iteration "
         << stats.outer_iterations << ", after " << stats.lp_solves
         << " LP solves)";
      throw BudgetExhaustedError(os.str());
    }
    MRLC_ENSURE(lp_result.status == lp::SolveStatus::kOptimal,
                "LP solve failed to converge");

    // Line 6: drop edges outside the support of the extreme point.
    for (graph::EdgeId id : working.alive_edge_ids()) {
      if (lp_result.edge_values[static_cast<std::size_t>(id)] <=
          options_.zero_tolerance) {
        working.remove_edge(id);
        ++stats.edges_removed;
      }
    }

    // Line 8: relax every vertex whose constraint can no longer bind.
    int removed_this_round = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!constrained[static_cast<std::size_t>(v)]) continue;
      if (constraint_removable(net, working, v, lifetime_bound,
                               options_.bound_mode)) {
        constrained[static_cast<std::size_t>(v)] = false;
        --constrained_count;
        ++removed_this_round;
        ++stats.constraints_removed;
      }
    }

    if (removed_this_round == 0) {
      // Theorem 2 rules this out at exact extreme points; floating-point
      // cuts can produce it.  Either fall back (remove the slackest vertex)
      // or give up loudly.
      MRLC_ENSURE(options_.allow_slack_fallback,
                  "no removable lifetime constraint found (numerical "
                  "degeneracy) and the slack fallback is disabled");
      stats.used_fallback = true;
      graph::VertexId best = -1;
      double best_slack = -std::numeric_limits<double>::infinity();
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!constrained[static_cast<std::size_t>(v)]) continue;
        const double slack = worst_case_lifetime(net, working, v) - lifetime_bound;
        if (slack > best_slack) {
          best_slack = slack;
          best = v;
        }
      }
      MRLC_ENSURE(best != -1, "constrained set empty despite counter");
      constrained[static_cast<std::size_t>(best)] = false;
      --constrained_count;
      ++stats.constraints_removed;
    }
  }

  static metrics::Counter& iterations = metrics::counter("ira.outer_iterations");
  static metrics::Counter& lp_solves = metrics::counter("ira.lp_solves");
  static metrics::Counter& cuts = metrics::counter("ira.cuts_added");
  static metrics::Counter& edges = metrics::counter("ira.edges_removed");
  static metrics::Counter& relaxed = metrics::counter("ira.constraints_relaxed");
  static metrics::Counter& fallbacks = metrics::counter("ira.slack_fallbacks");
  static metrics::Histogram& iter_hist =
      metrics::histogram("ira.iterations_per_solve");
  iterations.add(stats.outer_iterations);
  lp_solves.add(stats.lp_solves);
  cuts.add(stats.cuts_added);
  edges.add(stats.edges_removed);
  relaxed.add(stats.constraints_removed);
  if (stats.used_fallback) fallbacks.add();
  iter_hist.record(stats.outer_iterations);

  // W = ∅: LP(G, L', ∅) is the Subtour LP, whose extreme points are
  // integral (Lemma 1) — equivalently, the MST of the surviving edges.
  const auto mst = graph::prim_mst(working, net.sink());
  if (!mst.has_value()) {
    throw InfeasibleError(
        "edge pruning disconnected the working graph (should not happen: the "
        "LP keeps x(E(V)) = n-1 over the support)");
  }

  IraResult out{wsn::AggregationTree::from_edges(net, mst->edges),
                0.0, 0.0, 0.0, strict, false, stats};
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.meets_bound = out.lifetime >= lifetime_bound * (1.0 - 1e-12);
  return out;
}

}  // namespace mrlc::core
