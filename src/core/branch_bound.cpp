#include "core/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/greedy_mrlc.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "graph/dsu.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

namespace {

/// A suspended subtree of the search: everything needed to resume the DFS
/// at `index` with the partial tree `chosen` already committed.
struct FrontierState {
  std::size_t index;
  double cost;
  graph::DisjointSetUnion dsu;
  std::vector<graph::EdgeId> chosen;
};

struct Searcher {
  const wsn::Network& net;
  const std::vector<graph::EdgeId>& sorted;  // edges by ascending cost
  const std::vector<int>& degree_cap;        // per-vertex integer degree cap
  std::uint64_t budget;                      // max nodes this searcher explores

  std::uint64_t explored = 0;
  std::uint64_t pruned = 0;
  std::uint64_t incumbent_updates = 0;
  bool budget_exceeded = false;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::EdgeId> best_edges;
  std::vector<graph::EdgeId> current;
  std::vector<int> degree;

  // Split mode: when set, nodes at index >= split_index are suspended onto
  // the frontier (uncounted — the resuming searcher counts them) instead of
  // being expanded.
  std::vector<FrontierState>* frontier = nullptr;
  std::size_t split_index = 0;

  Searcher(const wsn::Network& network, const std::vector<graph::EdgeId>& edges,
           const std::vector<int>& caps, std::uint64_t node_budget)
      : net(network),
        sorted(edges),
        degree_cap(caps),
        budget(node_budget),
        degree(static_cast<std::size_t>(network.node_count()), 0) {}

  /// Kruskal over edges[index..] on the contracted components: an exact
  /// lower bound on the cost still needed to connect everything (ignores
  /// degree caps, so it never over-prunes).
  double completion_lower_bound(std::size_t index, graph::DisjointSetUnion dsu) {
    double bound = 0.0;
    int remaining = dsu.set_count() - 1;
    for (std::size_t i = index; i < sorted.size() && remaining > 0; ++i) {
      const graph::Edge& e = net.topology().edge(sorted[i]);
      if (dsu.unite(e.u, e.v)) {
        bound += e.weight;
        --remaining;
      }
    }
    return remaining == 0 ? bound : std::numeric_limits<double>::infinity();
  }

  void recurse(std::size_t index, double cost, const graph::DisjointSetUnion& dsu) {
    if (budget_exceeded) return;
    if (frontier != nullptr && index >= split_index) {
      frontier->push_back({index, cost, dsu, current});
      return;
    }
    if (++explored > budget) {
      budget_exceeded = true;
      return;
    }
    if (dsu.set_count() == 1) {
      if (cost < best_cost) {
        best_cost = cost;
        best_edges = current;
        ++incumbent_updates;
      }
      return;
    }
    if (index >= sorted.size()) return;
    if (cost + completion_lower_bound(index, dsu) >= best_cost - 1e-12) {
      ++pruned;
      return;
    }

    const graph::EdgeId id = sorted[index];
    const graph::Edge& e = net.topology().edge(id);

    // Branch 1: take the edge (cheapest-first gives strong incumbents).
    graph::DisjointSetUnion with_edge = dsu;
    if (with_edge.unite(e.u, e.v) &&
        degree[static_cast<std::size_t>(e.u)] + 1 <=
            degree_cap[static_cast<std::size_t>(e.u)] &&
        degree[static_cast<std::size_t>(e.v)] + 1 <=
            degree_cap[static_cast<std::size_t>(e.v)]) {
      current.push_back(id);
      ++degree[static_cast<std::size_t>(e.u)];
      ++degree[static_cast<std::size_t>(e.v)];
      recurse(index + 1, cost + e.weight, with_edge);
      --degree[static_cast<std::size_t>(e.u)];
      --degree[static_cast<std::size_t>(e.v)];
      current.pop_back();
    }
    // Branch 2: skip the edge.
    recurse(index + 1, cost, dsu);
  }
};

/// Depth at which the serial pass suspends subtrees onto the frontier.
/// Two branches per level gives at most 2^6 = 64 subproblems — enough to
/// keep a pool busy, small enough that the serial prefix is negligible.
constexpr std::size_t kSplitDepth = 6;

/// Frontier states are searched in waves of this constant size: every
/// searcher in a wave starts from the incumbent as of the wave boundary and
/// the results are merged in frontier order.  Because the wave width does
/// not depend on the pool width, the nodes expanded, prunes, incumbent
/// updates, and the winning tree are identical for every thread count (the
/// price is incumbents propagating one wave late compared to a serial DFS).
constexpr std::size_t kWave = 8;

}  // namespace

std::optional<BranchBoundResult> branch_bound_mrlc(const wsn::Network& net,
                                                   double lifetime_bound,
                                                   const BranchBoundOptions& options) {
  trace::ScopedPhase phase("branch_bound");
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");

  const int n = net.node_count();
  std::vector<int> caps(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double children = net.max_children_real(v, lifetime_bound);
    const double degree = v == net.sink() ? children : children + 1.0;
    const int cap = static_cast<int>(std::floor(degree + 1e-9));
    if (cap < 1) return std::nullopt;  // v cannot even attach to the tree
    caps[static_cast<std::size_t>(v)] = cap;
  }

  std::vector<graph::EdgeId> sorted = net.topology().alive_edge_ids();
  std::sort(sorted.begin(), sorted.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return net.topology().edge(a).weight < net.topology().edge(b).weight;
  });

  // Phase 1 (serial): run the DFS but suspend every subtree rooted at
  // kSplitDepth onto a frontier.  Shallow terminals and prunes are handled
  // here directly.
  Searcher root(net, sorted, caps, options.max_nodes_explored);

  // Warm start: the degree-capped greedy tree, when it meets the bound,
  // seeds a finite incumbent and massively improves pruning.
  try {
    const baselines::GreedyMrlcResult greedy = baselines::greedy_mrlc(net, lifetime_bound);
    if (greedy.meets_bound) {
      root.best_cost = wsn::tree_cost(net, greedy.tree) + 1e-12;
      root.best_edges = greedy.tree.edge_ids();
    }
  } catch (const InfeasibleError&) {
    // greedy stuck; search without a warm start
  }

  std::vector<FrontierState> frontier;
  root.frontier = &frontier;
  root.split_index = kSplitDepth;
  root.recurse(0, 0.0, graph::DisjointSetUnion(n));
  root.frontier = nullptr;

  std::uint64_t explored_total = root.explored;
  std::uint64_t pruned_total = root.pruned;
  std::uint64_t incumbent_total = root.incumbent_updates;
  bool budget_exceeded = root.budget_exceeded;
  double best_cost = root.best_cost;
  std::vector<graph::EdgeId> best_edges = root.best_edges;

  // Cooperative-budget charges happen only at serial points (end of the
  // serial phase 1, then each wave merge), so exhaustion interrupts the
  // search at the same wave boundary for every thread count.
  bool interrupted = false;
  if (options.budget != nullptr &&
      !options.budget->charge(static_cast<std::int64_t>(root.explored))) {
    interrupted = true;
  }

  // Phase 2: resume the suspended subtrees in constant-size waves on the
  // thread pool.  Each wave's searchers share the incumbent and the node
  // budget remaining as of the wave boundary; results merge serially in
  // frontier order (see kWave above for why this is deterministic).
  for (std::size_t start = 0;
       start < frontier.size() && !budget_exceeded && !interrupted;
       start += kWave) {
    const std::size_t end = std::min(start + kWave, frontier.size());
    const std::uint64_t remaining =
        options.max_nodes_explored > explored_total
            ? options.max_nodes_explored - explored_total
            : 0;
    if (remaining == 0) {
      budget_exceeded = true;
      break;
    }
    const int wave_size = static_cast<int>(end - start);
    std::vector<Searcher> wave;
    wave.reserve(static_cast<std::size_t>(wave_size));
    for (int i = 0; i < wave_size; ++i) {
      wave.emplace_back(net, sorted, caps, remaining);
      wave.back().best_cost = best_cost;
    }
    default_pool().for_each(wave_size, [&](int i) {
      Searcher& s = wave[static_cast<std::size_t>(i)];
      const FrontierState& state = frontier[start + static_cast<std::size_t>(i)];
      s.current = state.chosen;
      for (graph::EdgeId id : state.chosen) {
        const graph::Edge& e = net.topology().edge(id);
        ++s.degree[static_cast<std::size_t>(e.u)];
        ++s.degree[static_cast<std::size_t>(e.v)];
      }
      s.recurse(state.index, state.cost, state.dsu);
    });
    std::uint64_t wave_explored = 0;
    for (const Searcher& s : wave) {
      explored_total += s.explored;
      wave_explored += s.explored;
      pruned_total += s.pruned;
      incumbent_total += s.incumbent_updates;
      if (s.budget_exceeded) budget_exceeded = true;
      if (s.best_cost < best_cost) {
        best_cost = s.best_cost;
        best_edges = s.best_edges;
      }
    }
    if (explored_total > options.max_nodes_explored) budget_exceeded = true;
    if (options.budget != nullptr &&
        !options.budget->charge(static_cast<std::int64_t>(wave_explored))) {
      interrupted = true;
    }
  }

  static metrics::Counter& expanded =
      metrics::counter("branch_bound.nodes_expanded");
  static metrics::Counter& pruned = metrics::counter("branch_bound.nodes_pruned");
  static metrics::Counter& incumbents =
      metrics::counter("branch_bound.incumbent_updates");
  expanded.add(static_cast<long long>(explored_total));
  pruned.add(static_cast<long long>(pruned_total));
  incumbents.add(static_cast<long long>(incumbent_total));

  if (interrupted && best_edges.empty()) {
    throw BudgetExhaustedError(
        "budget exhausted before branch-and-bound found any tree meeting the "
        "lifetime bound");
  }
  if (!interrupted) {
    MRLC_REQUIRE(!budget_exceeded,
                 "branch-and-bound exceeded its node budget on this instance");
  }
  if (best_edges.empty()) return std::nullopt;

  BranchBoundResult out;
  out.tree = wsn::AggregationTree::from_edges(net, best_edges);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.nodes_explored = explored_total;
  out.complete = !interrupted;
  MRLC_ENSURE(out.lifetime >= lifetime_bound * (1.0 - 1e-9),
              "branch-and-bound produced a tree violating the bound");
  return out;
}

}  // namespace mrlc::core
