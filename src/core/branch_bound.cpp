#include "core/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/greedy_mrlc.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "graph/dsu.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

namespace {

struct Searcher {
  const wsn::Network& net;
  const std::vector<graph::EdgeId> sorted;  // edges by ascending cost
  const std::vector<int> degree_cap;        // per-vertex integer degree cap
  const BranchBoundOptions& options;

  std::uint64_t explored = 0;
  std::uint64_t pruned = 0;
  std::uint64_t incumbent_updates = 0;
  bool budget_exceeded = false;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::EdgeId> best_edges;
  std::vector<graph::EdgeId> current;
  std::vector<int> degree;

  Searcher(const wsn::Network& network, std::vector<graph::EdgeId> edges,
           std::vector<int> caps, const BranchBoundOptions& opts)
      : net(network),
        sorted(std::move(edges)),
        degree_cap(std::move(caps)),
        options(opts),
        degree(static_cast<std::size_t>(network.node_count()), 0) {}

  /// Kruskal over edges[index..] on the contracted components: an exact
  /// lower bound on the cost still needed to connect everything (ignores
  /// degree caps, so it never over-prunes).
  double completion_lower_bound(std::size_t index, graph::DisjointSetUnion dsu) {
    double bound = 0.0;
    int remaining = dsu.set_count() - 1;
    for (std::size_t i = index; i < sorted.size() && remaining > 0; ++i) {
      const graph::Edge& e = net.topology().edge(sorted[i]);
      if (dsu.unite(e.u, e.v)) {
        bound += e.weight;
        --remaining;
      }
    }
    return remaining == 0 ? bound : std::numeric_limits<double>::infinity();
  }

  void recurse(std::size_t index, double cost, const graph::DisjointSetUnion& dsu) {
    if (budget_exceeded) return;
    if (++explored > options.max_nodes_explored) {
      budget_exceeded = true;
      return;
    }
    if (dsu.set_count() == 1) {
      if (cost < best_cost) {
        best_cost = cost;
        best_edges = current;
        ++incumbent_updates;
      }
      return;
    }
    if (index >= sorted.size()) return;
    if (cost + completion_lower_bound(index, dsu) >= best_cost - 1e-12) {
      ++pruned;
      return;
    }

    const graph::EdgeId id = sorted[index];
    const graph::Edge& e = net.topology().edge(id);

    // Branch 1: take the edge (cheapest-first gives strong incumbents).
    graph::DisjointSetUnion with_edge = dsu;
    if (with_edge.unite(e.u, e.v) &&
        degree[static_cast<std::size_t>(e.u)] + 1 <=
            degree_cap[static_cast<std::size_t>(e.u)] &&
        degree[static_cast<std::size_t>(e.v)] + 1 <=
            degree_cap[static_cast<std::size_t>(e.v)]) {
      current.push_back(id);
      ++degree[static_cast<std::size_t>(e.u)];
      ++degree[static_cast<std::size_t>(e.v)];
      recurse(index + 1, cost + e.weight, with_edge);
      --degree[static_cast<std::size_t>(e.u)];
      --degree[static_cast<std::size_t>(e.v)];
      current.pop_back();
    }
    // Branch 2: skip the edge.
    recurse(index + 1, cost, dsu);
  }
};

}  // namespace

std::optional<BranchBoundResult> branch_bound_mrlc(const wsn::Network& net,
                                                   double lifetime_bound,
                                                   const BranchBoundOptions& options) {
  trace::ScopedPhase phase("branch_bound");
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");

  const int n = net.node_count();
  std::vector<int> caps(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double children = net.max_children_real(v, lifetime_bound);
    const double degree = v == net.sink() ? children : children + 1.0;
    const int cap = static_cast<int>(std::floor(degree + 1e-9));
    if (cap < 1) return std::nullopt;  // v cannot even attach to the tree
    caps[static_cast<std::size_t>(v)] = cap;
  }

  std::vector<graph::EdgeId> sorted = net.topology().alive_edge_ids();
  std::sort(sorted.begin(), sorted.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return net.topology().edge(a).weight < net.topology().edge(b).weight;
  });

  Searcher searcher(net, std::move(sorted), std::move(caps), options);

  // Warm start: the degree-capped greedy tree, when it meets the bound,
  // seeds a finite incumbent and massively improves pruning.
  try {
    const baselines::GreedyMrlcResult greedy = baselines::greedy_mrlc(net, lifetime_bound);
    if (greedy.meets_bound) {
      searcher.best_cost = wsn::tree_cost(net, greedy.tree) + 1e-12;
      searcher.best_edges = greedy.tree.edge_ids();
    }
  } catch (const InfeasibleError&) {
    // greedy stuck; search without a warm start
  }

  searcher.recurse(0, 0.0, graph::DisjointSetUnion(n));

  static metrics::Counter& expanded =
      metrics::counter("branch_bound.nodes_expanded");
  static metrics::Counter& pruned = metrics::counter("branch_bound.nodes_pruned");
  static metrics::Counter& incumbents =
      metrics::counter("branch_bound.incumbent_updates");
  expanded.add(static_cast<long long>(searcher.explored));
  pruned.add(static_cast<long long>(searcher.pruned));
  incumbents.add(static_cast<long long>(searcher.incumbent_updates));

  MRLC_REQUIRE(!searcher.budget_exceeded,
               "branch-and-bound exceeded its node budget on this instance");
  if (searcher.best_edges.empty()) return std::nullopt;

  BranchBoundResult out;
  out.tree = wsn::AggregationTree::from_edges(net, searcher.best_edges);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.nodes_explored = searcher.explored;
  MRLC_ENSURE(out.lifetime >= lifetime_bound * (1.0 - 1e-9),
              "branch-and-bound produced a tree violating the bound");
  return out;
}

}  // namespace mrlc::core
