#include "core/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/greedy_mrlc.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "graph/dsu.hpp"
#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {

namespace {

/// Slack added to the (weighted) row checks.  Unit rows compare exact
/// small integers, where the slack is inert; weighted energy rows need it
/// to absorb the add/subtract drift of backtracking.
constexpr double kRowTol = 1e-12;

/// One search instance: the variant's edge costs (indexed by edge id) plus
/// its per-vertex rows (cap = +inf when unconstrained, `row_weight` null
/// for the paper's unit degree rows) and an optional incumbent seed.
struct BbProblem {
  std::vector<double> edge_cost;
  std::vector<double> cap;
  MrlcLpFormulation::RowWeight row_weight;
  double warm_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::EdgeId> warm_edges;
};

/// A suspended subtree of the search: everything needed to resume the DFS
/// at `index` with the partial tree `chosen` already committed.
struct FrontierState {
  std::size_t index;
  double cost;
  graph::DisjointSetUnion dsu;
  std::vector<graph::EdgeId> chosen;
};

struct Searcher {
  const wsn::Network& net;
  const BbProblem& problem;
  const std::vector<graph::EdgeId>& sorted;  // edges by ascending cost
  std::uint64_t budget;                      // max nodes this searcher explores

  std::uint64_t explored = 0;
  std::uint64_t pruned = 0;
  std::uint64_t incumbent_updates = 0;
  bool budget_exceeded = false;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::EdgeId> best_edges;
  std::vector<graph::EdgeId> current;
  std::vector<double> load;  // per-vertex committed row load

  // Split mode: when set, nodes at index >= split_index are suspended onto
  // the frontier (uncounted — the resuming searcher counts them) instead of
  // being expanded.
  std::vector<FrontierState>* frontier = nullptr;
  std::size_t split_index = 0;

  Searcher(const wsn::Network& network, const BbProblem& bb_problem,
           const std::vector<graph::EdgeId>& edges, std::uint64_t node_budget)
      : net(network),
        problem(bb_problem),
        sorted(edges),
        budget(node_budget),
        load(static_cast<std::size_t>(network.node_count()), 0.0) {}

  double edge_load(graph::VertexId v, graph::EdgeId e) const {
    return problem.row_weight ? problem.row_weight(v, e) : 1.0;
  }

  void commit(graph::EdgeId id) {
    const graph::Edge& e = net.topology().edge(id);
    load[static_cast<std::size_t>(e.u)] += edge_load(e.u, id);
    load[static_cast<std::size_t>(e.v)] += edge_load(e.v, id);
  }

  /// Kruskal over edges[index..] on the contracted components: an exact
  /// lower bound on the cost still needed to connect everything (ignores
  /// the degree rows, so it never over-prunes).
  double completion_lower_bound(std::size_t index, graph::DisjointSetUnion dsu) {
    double bound = 0.0;
    int remaining = dsu.set_count() - 1;
    for (std::size_t i = index; i < sorted.size() && remaining > 0; ++i) {
      const graph::Edge& e = net.topology().edge(sorted[i]);
      if (dsu.unite(e.u, e.v)) {
        bound += problem.edge_cost[static_cast<std::size_t>(sorted[i])];
        --remaining;
      }
    }
    return remaining == 0 ? bound : std::numeric_limits<double>::infinity();
  }

  void recurse(std::size_t index, double cost, const graph::DisjointSetUnion& dsu) {
    if (budget_exceeded) return;
    if (frontier != nullptr && index >= split_index) {
      frontier->push_back({index, cost, dsu, current});
      return;
    }
    if (++explored > budget) {
      budget_exceeded = true;
      return;
    }
    if (dsu.set_count() == 1) {
      if (cost < best_cost) {
        best_cost = cost;
        best_edges = current;
        ++incumbent_updates;
      }
      return;
    }
    if (index >= sorted.size()) return;
    if (cost + completion_lower_bound(index, dsu) >= best_cost - 1e-12) {
      ++pruned;
      return;
    }

    const graph::EdgeId id = sorted[index];
    const graph::Edge& e = net.topology().edge(id);

    // Branch 1: take the edge (cheapest-first gives strong incumbents).
    const double wu = edge_load(e.u, id);
    const double wv = edge_load(e.v, id);
    graph::DisjointSetUnion with_edge = dsu;
    if (with_edge.unite(e.u, e.v) &&
        load[static_cast<std::size_t>(e.u)] + wu <=
            problem.cap[static_cast<std::size_t>(e.u)] + kRowTol &&
        load[static_cast<std::size_t>(e.v)] + wv <=
            problem.cap[static_cast<std::size_t>(e.v)] + kRowTol) {
      current.push_back(id);
      load[static_cast<std::size_t>(e.u)] += wu;
      load[static_cast<std::size_t>(e.v)] += wv;
      recurse(index + 1,
              cost + problem.edge_cost[static_cast<std::size_t>(id)],
              with_edge);
      load[static_cast<std::size_t>(e.u)] -= wu;
      load[static_cast<std::size_t>(e.v)] -= wv;
      current.pop_back();
    }
    // Branch 2: skip the edge.
    recurse(index + 1, cost, dsu);
  }
};

/// Depth at which the serial pass suspends subtrees onto the frontier.
/// Two branches per level gives at most 2^6 = 64 subproblems — enough to
/// keep a pool busy, small enough that the serial prefix is negligible.
constexpr std::size_t kSplitDepth = 6;

/// Frontier states are searched in waves of this constant size: every
/// searcher in a wave starts from the incumbent as of the wave boundary and
/// the results are merged in frontier order.  Because the wave width does
/// not depend on the pool width, the nodes expanded, prunes, incumbent
/// updates, and the winning tree are identical for every thread count (the
/// price is incumbents propagating one wave late compared to a serial DFS).
constexpr std::size_t kWave = 8;

struct SearchOutcome {
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<graph::EdgeId> best_edges;
  std::uint64_t explored = 0;
  bool budget_exceeded = false;
  bool interrupted = false;
};

/// The shared split/wave search: serial prefix to kSplitDepth, then
/// deterministic waves on the thread pool (see kWave).
SearchOutcome run_search(const wsn::Network& net, const BbProblem& problem,
                         const BranchBoundOptions& options) {
  std::vector<graph::EdgeId> sorted = net.topology().alive_edge_ids();
  std::sort(sorted.begin(), sorted.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return problem.edge_cost[static_cast<std::size_t>(a)] <
           problem.edge_cost[static_cast<std::size_t>(b)];
  });

  const int n = net.node_count();
  Searcher root(net, problem, sorted, options.max_nodes_explored);
  if (!problem.warm_edges.empty()) {
    root.best_cost = problem.warm_cost + 1e-12;
    root.best_edges = problem.warm_edges;
  }

  std::vector<FrontierState> frontier;
  root.frontier = &frontier;
  root.split_index = kSplitDepth;
  root.recurse(0, 0.0, graph::DisjointSetUnion(n));
  root.frontier = nullptr;

  std::uint64_t explored_total = root.explored;
  std::uint64_t pruned_total = root.pruned;
  std::uint64_t incumbent_total = root.incumbent_updates;
  bool budget_exceeded = root.budget_exceeded;
  double best_cost = root.best_cost;
  std::vector<graph::EdgeId> best_edges = root.best_edges;

  // Cooperative-budget charges happen only at serial points (end of the
  // serial phase 1, then each wave merge), so exhaustion interrupts the
  // search at the same wave boundary for every thread count.
  bool interrupted = false;
  if (options.budget != nullptr &&
      !options.budget->charge(static_cast<std::int64_t>(root.explored))) {
    interrupted = true;
  }

  for (std::size_t start = 0;
       start < frontier.size() && !budget_exceeded && !interrupted;
       start += kWave) {
    const std::size_t end = std::min(start + kWave, frontier.size());
    const std::uint64_t remaining =
        options.max_nodes_explored > explored_total
            ? options.max_nodes_explored - explored_total
            : 0;
    if (remaining == 0) {
      budget_exceeded = true;
      break;
    }
    const int wave_size = static_cast<int>(end - start);
    std::vector<Searcher> wave;
    wave.reserve(static_cast<std::size_t>(wave_size));
    for (int i = 0; i < wave_size; ++i) {
      wave.emplace_back(net, problem, sorted, remaining);
      wave.back().best_cost = best_cost;
    }
    default_pool().for_each(wave_size, [&](int i) {
      Searcher& s = wave[static_cast<std::size_t>(i)];
      const FrontierState& state = frontier[start + static_cast<std::size_t>(i)];
      s.current = state.chosen;
      for (graph::EdgeId id : state.chosen) {
        s.commit(id);
      }
      s.recurse(state.index, state.cost, state.dsu);
    });
    std::uint64_t wave_explored = 0;
    for (const Searcher& s : wave) {
      explored_total += s.explored;
      wave_explored += s.explored;
      pruned_total += s.pruned;
      incumbent_total += s.incumbent_updates;
      if (s.budget_exceeded) budget_exceeded = true;
      if (s.best_cost < best_cost) {
        best_cost = s.best_cost;
        best_edges = s.best_edges;
      }
    }
    if (explored_total > options.max_nodes_explored) budget_exceeded = true;
    if (options.budget != nullptr &&
        !options.budget->charge(static_cast<std::int64_t>(wave_explored))) {
      interrupted = true;
    }
  }

  static metrics::Counter& expanded =
      metrics::counter("branch_bound.nodes_expanded");
  static metrics::Counter& pruned = metrics::counter("branch_bound.nodes_pruned");
  static metrics::Counter& incumbents =
      metrics::counter("branch_bound.incumbent_updates");
  expanded.add(static_cast<long long>(explored_total));
  pruned.add(static_cast<long long>(pruned_total));
  incumbents.add(static_cast<long long>(incumbent_total));

  if (interrupted && best_edges.empty()) {
    throw BudgetExhaustedError(
        "budget exhausted before branch-and-bound found any tree meeting the "
        "lifetime bound");
  }
  if (!interrupted) {
    MRLC_REQUIRE(!budget_exceeded,
                 "branch-and-bound exceeded its node budget on this instance");
  }

  SearchOutcome out;
  out.best_cost = best_cost;
  out.best_edges = std::move(best_edges);
  out.explored = explored_total;
  out.budget_exceeded = budget_exceeded;
  out.interrupted = interrupted;
  return out;
}

BranchBoundResult finish_result(const wsn::Network& net,
                                const SearchOutcome& outcome) {
  BranchBoundResult out;
  out.tree = wsn::AggregationTree::from_edges(net, outcome.best_edges);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.objective = out.cost;
  out.nodes_explored = outcome.explored;
  out.complete = !outcome.interrupted;
  return out;
}

/// The variant's edge costs over the full topology, indexed by edge id.
std::vector<double> variant_edge_costs(const ProblemVariant& variant,
                                       const wsn::Network& net) {
  std::vector<double> cost(
      static_cast<std::size_t>(net.topology().edge_count()), 0.0);
  for (graph::EdgeId id : net.topology().alive_edge_ids()) {
    cost[static_cast<std::size_t>(id)] = variant.edge_cost(net, id);
  }
  return cost;
}

/// MST under the variant's edge costs, as an incumbent seed when it
/// satisfies the variant's rows (it is the unconstrained cost optimum, so
/// when it fits, the search only has to certify it).
void seed_variant_mst(const wsn::Network& net, BbProblem& problem) {
  graph::Graph reweighted = net.topology();
  for (graph::EdgeId id : reweighted.alive_edge_ids()) {
    reweighted.set_weight(id,
                          problem.edge_cost[static_cast<std::size_t>(id)]);
  }
  const auto mst = graph::prim_mst(reweighted, net.sink());
  if (!mst.has_value()) return;
  std::vector<double> load(static_cast<std::size_t>(net.node_count()), 0.0);
  double cost = 0.0;
  for (graph::EdgeId id : mst->edges) {
    const graph::Edge& e = net.topology().edge(id);
    load[static_cast<std::size_t>(e.u)] +=
        problem.row_weight ? problem.row_weight(e.u, id) : 1.0;
    load[static_cast<std::size_t>(e.v)] +=
        problem.row_weight ? problem.row_weight(e.v, id) : 1.0;
    cost += problem.edge_cost[static_cast<std::size_t>(id)];
  }
  for (graph::VertexId v = 0; v < net.node_count(); ++v) {
    if (load[static_cast<std::size_t>(v)] >
        problem.cap[static_cast<std::size_t>(v)] + kRowTol) {
      return;  // the MST violates a row; search without a seed
    }
  }
  problem.warm_cost = cost;
  problem.warm_edges = mst->edges;
}

}  // namespace

std::optional<BranchBoundResult> branch_bound_mrlc(const wsn::Network& net,
                                                   double lifetime_bound,
                                                   const BranchBoundOptions& options) {
  trace::ScopedPhase phase("branch_bound");
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");

  const int n = net.node_count();
  BbProblem problem;
  problem.cap.resize(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double children = net.max_children_real(v, lifetime_bound);
    const double degree = v == net.sink() ? children : children + 1.0;
    const int cap = static_cast<int>(std::floor(degree + 1e-9));
    if (cap < 1) return std::nullopt;  // v cannot even attach to the tree
    problem.cap[static_cast<std::size_t>(v)] = static_cast<double>(cap);
  }
  problem.edge_cost.resize(
      static_cast<std::size_t>(net.topology().edge_count()), 0.0);
  for (graph::EdgeId id : net.topology().alive_edge_ids()) {
    problem.edge_cost[static_cast<std::size_t>(id)] =
        net.topology().edge(id).weight;
  }

  // Warm start: the degree-capped greedy tree, when it meets the bound,
  // seeds a finite incumbent and massively improves pruning.
  try {
    const baselines::GreedyMrlcResult greedy = baselines::greedy_mrlc(net, lifetime_bound);
    if (greedy.meets_bound) {
      problem.warm_cost = wsn::tree_cost(net, greedy.tree);
      problem.warm_edges = greedy.tree.edge_ids();
    }
  } catch (const InfeasibleError&) {
    // greedy stuck; search without a warm start
  }

  const SearchOutcome outcome = run_search(net, problem, options);
  if (outcome.best_edges.empty()) return std::nullopt;

  BranchBoundResult out = finish_result(net, outcome);
  MRLC_ENSURE(out.lifetime >= lifetime_bound * (1.0 - 1e-9),
              "branch-and-bound produced a tree violating the bound");
  return out;
}

namespace {

/// max_lifetime: exact binary search over the discrete lifetime ladder —
/// a rung is reachable iff the (exact) mrlc search at that bound finds any
/// tree, so unlike the LP-probed scan this answer is the true maximum.
std::optional<BranchBoundResult> branch_bound_max_lifetime(
    const wsn::Network& net, double floor_bound,
    const BranchBoundOptions& options) {
  const std::vector<double> ladder = lifetime_candidates(net);
  std::uint64_t explored = 0;
  bool complete = true;
  std::optional<BranchBoundResult> best;
  // Invariants: rungs >= hi are unreachable; `best` holds the result at
  // the highest rung known reachable (if any).
  std::size_t lo = 0;
  std::size_t hi = ladder.size();
  auto probe = [&](std::size_t i) {
    std::optional<BranchBoundResult> res =
        branch_bound_mrlc(net, ladder[i], options);
    if (res.has_value()) {
      explored += res->nodes_explored;
      complete = complete && res->complete;
    }
    return res;
  };
  std::optional<BranchBoundResult> at_lo = probe(0);
  if (!at_lo.has_value()) return std::nullopt;  // disconnected
  best = std::move(at_lo);
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::optional<BranchBoundResult> res = probe(mid);
    if (res.has_value()) {
      lo = mid;
      best = std::move(res);
    } else {
      hi = mid;
    }
  }
  best->objective = best->lifetime;
  best->nodes_explored = explored;
  best->complete = complete;
  if (best->lifetime < floor_bound * (1.0 - 1e-12)) return std::nullopt;
  return best;
}

}  // namespace

std::optional<BranchBoundResult> branch_bound_variant(
    VariantId id, const wsn::Network& net, double bound,
    const BranchBoundOptions& options) {
  if (id == VariantId::kMrlc) {
    return branch_bound_mrlc(net, bound, options);
  }
  if (id == VariantId::kMaxLifetime) {
    return branch_bound_max_lifetime(net, bound, options);
  }

  trace::ScopedPhase phase("branch_bound");
  net.validate();
  MRLC_REQUIRE(bound > 0.0, "lifetime bound must be positive");
  const ProblemVariant& variant = problem_variant(id);

  const int n = net.node_count();
  BbProblem problem;
  problem.edge_cost = variant_edge_costs(variant, net);
  DegreeBounds rows = variant.bounds(
      net, std::vector<bool>(static_cast<std::size_t>(n), true),
      variant.internal_bound(net, bound));
  problem.cap.resize(static_cast<std::size_t>(n),
                     std::numeric_limits<double>::infinity());
  for (graph::VertexId v = 0; v < n; ++v) {
    if (rows.caps[static_cast<std::size_t>(v)].has_value()) {
      problem.cap[static_cast<std::size_t>(v)] =
          *rows.caps[static_cast<std::size_t>(v)];
    }
  }
  problem.row_weight = std::move(rows.row_weight);
  seed_variant_mst(net, problem);

  const SearchOutcome outcome = run_search(net, problem, options);
  if (outcome.best_edges.empty()) return std::nullopt;

  BranchBoundResult out = finish_result(net, outcome);
  out.objective = variant.tree_objective(net, out.tree);
  MRLC_ENSURE(id == VariantId::kMinEnergy ||
                  variant.tree_feasible(net, out.tree, bound * (1.0 - 1e-9)),
              "branch-and-bound produced a tree violating the variant bound");
  return out;
}

}  // namespace mrlc::core
