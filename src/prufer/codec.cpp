#include "prufer/codec.hpp"

#include <queue>

namespace mrlc::prufer {

void validate_parent_array(const ParentArray& parent) {
  const int n = static_cast<int>(parent.size());
  MRLC_REQUIRE(n >= 1, "tree needs at least one node");
  MRLC_REQUIRE(parent[0] == -1, "node 0 must be the root (parent -1)");
  for (int v = 1; v < n; ++v) {
    MRLC_REQUIRE(parent[static_cast<std::size_t>(v)] >= 0 &&
                     parent[static_cast<std::size_t>(v)] < n,
                 "non-root parent out of range");
    MRLC_REQUIRE(parent[static_cast<std::size_t>(v)] != v, "node cannot parent itself");
  }
  // Acyclicity: every walk to the root must terminate within n steps.
  for (int v = 0; v < n; ++v) {
    int steps = 0;
    for (int w = v; w != -1; w = parent[static_cast<std::size_t>(w)]) {
      MRLC_REQUIRE(++steps <= n, "parent array contains a cycle");
    }
  }
}

void validate_forest(const ParentArray& parent) {
  const int n = static_cast<int>(parent.size());
  MRLC_REQUIRE(n >= 1, "tree needs at least one node");
  MRLC_REQUIRE(parent[0] == -1, "node 0 must be the root (parent -1)");
  for (int v = 1; v < n; ++v) {
    const int p = parent[static_cast<std::size_t>(v)];
    MRLC_REQUIRE(p >= -1 && p < n, "parent out of range");
    MRLC_REQUIRE(p != v, "node cannot parent itself");
  }
  for (int v = 0; v < n; ++v) {
    int steps = 0;
    for (int w = v; w != -1; w = parent[static_cast<std::size_t>(w)]) {
      MRLC_REQUIRE(++steps <= n, "parent array contains a cycle");
    }
  }
}

Code encode(const ParentArray& parent) {
  validate_parent_array(parent);
  const int n = static_cast<int>(parent.size());
  MRLC_REQUIRE(n >= 2, "Prüfer encoding needs at least two nodes");

  // degree[] counts children + (1 if non-root); a current leaf has degree 1
  // and is non-root (the root, label 0, is never the largest leaf while the
  // loop runs, but excluding it keeps the heap logic simple).
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int v = 1; v < n; ++v) {
    ++degree[static_cast<std::size_t>(v)];
    ++degree[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
  }

  std::priority_queue<int> leaves;  // max-heap of current leaf labels
  for (int v = 1; v < n; ++v) {
    if (degree[static_cast<std::size_t>(v)] == 1) leaves.push(v);
  }

  Code code;
  code.reserve(static_cast<std::size_t>(n - 2));
  for (int step = 0; step < n - 2; ++step) {
    MRLC_ENSURE(!leaves.empty(), "tree ran out of leaves before n-2 removals");
    const int leaf = leaves.top();
    leaves.pop();
    const int p = parent[static_cast<std::size_t>(leaf)];
    code.push_back(p);
    degree[static_cast<std::size_t>(leaf)] = 0;
    if (--degree[static_cast<std::size_t>(p)] == 1 && p != 0) leaves.push(p);
  }
  return code;
}

std::vector<int> decode_sequence(const Code& code, int node_count) {
  MRLC_REQUIRE(node_count >= 2, "decoding needs at least two nodes");
  MRLC_REQUIRE(static_cast<int>(code.size()) == node_count - 2,
               "code length must be n-2");
  for (int p : code) {
    MRLC_REQUIRE(p >= 0 && p < node_count, "code entry out of range");
  }

  // remaining[v]: occurrences of v still ahead in the code.  A label is a
  // candidate for removal once it no longer appears ahead and has not been
  // removed yet; we always take the largest candidate (Line 4).
  std::vector<int> remaining(static_cast<std::size_t>(node_count), 0);
  for (int p : code) ++remaining[static_cast<std::size_t>(p)];

  std::priority_queue<int> candidates;
  std::vector<bool> assigned(static_cast<std::size_t>(node_count), false);
  for (int v = 1; v < node_count; ++v) {  // the sink is never removed
    if (remaining[static_cast<std::size_t>(v)] == 0) candidates.push(v);
  }

  std::vector<int> sequence;
  sequence.reserve(static_cast<std::size_t>(node_count));
  for (int p : code) {
    MRLC_ENSURE(!candidates.empty(), "malformed code: no removable label");
    const int u = candidates.top();
    candidates.pop();
    assigned[static_cast<std::size_t>(u)] = true;
    sequence.push_back(u);
    if (--remaining[static_cast<std::size_t>(p)] == 0 && p != 0 &&
        !assigned[static_cast<std::size_t>(p)]) {
      candidates.push(p);
    }
  }
  // Final edge: the largest never-assigned non-sink label joins the sink.
  // (Algorithm 3 appends p_{n-2} here, which coincides whenever p_{n-2} is
  // not the sink; this form is correct for all trees — see codec.hpp.)
  MRLC_ENSURE(!candidates.empty(), "malformed code: no survivor for the last edge");
  sequence.push_back(candidates.top());
  sequence.push_back(0);
  return sequence;
}

ParentArray decode(const Code& code, int node_count) {
  const std::vector<int> seq = decode_sequence(code, node_count);
  ParentArray parent(static_cast<std::size_t>(node_count), -1);
  for (std::size_t i = 0; i + 2 < seq.size(); ++i) {
    parent[static_cast<std::size_t>(seq[i])] = code[i];
  }
  parent[static_cast<std::size_t>(seq[seq.size() - 2])] = 0;
  parent[0] = -1;
  validate_parent_array(parent);
  return parent;
}

int children_from_code(const Code& code, int node_count, int v) {
  MRLC_REQUIRE(node_count >= 2, "tree needs at least two nodes");
  MRLC_REQUIRE(v >= 0 && v < node_count, "vertex out of range");
  int occurrences = 0;
  for (int p : code) occurrences += p == v ? 1 : 0;
  return v == 0 ? occurrences + 1 : occurrences;
}

}  // namespace mrlc::prufer
