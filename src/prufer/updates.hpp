#pragma once

/// \file updates.hpp
/// \brief Tree-update operations on Prüfer-coded trees (Section VI-B).
///
/// Every sensor replicates (P, D); an update is a small record ("child c
/// now has parent p") that each node applies locally to derive the same new
/// (P', D').  The paper performs an in-place splice of P and D; we obtain
/// the identical result by decode -> mutate -> encode, which is the same
/// O(n log n) and trivially deterministic across replicas.

#include "prufer/codec.hpp"

namespace mrlc::prufer {

/// Members of the subtree rooted at `root` (inclusive) — the "connected
/// component without (child, parent)" of the Link-Getting-Worse scheme.
std::vector<int> subtree_members(const ParentArray& parent, int root);

/// Applies a parent change to a coded tree and returns the new code.
/// \throws InfeasibleError if `new_parent` lies inside `child`'s subtree
///         (the change would create a cycle) or `child` is the sink.
Code apply_parent_change(const Code& code, int node_count, int child, int new_parent);

/// Re-roots the subtree that currently hangs below `subtree_root` so that
/// `new_local_root` (a member of that subtree) becomes its top: parent
/// pointers along the path new_local_root -> subtree_root are reversed,
/// and new_local_root's parent is set to `attach_to` (a node outside the
/// subtree).  This is the general form of the Link-Getting-Worse repair
/// when the best replacement link is not incident to the detached child
/// itself.  Mutates and returns the array.
ParentArray& evert_and_attach(ParentArray& parent, int subtree_root,
                              int new_local_root, int attach_to);

}  // namespace mrlc::prufer
