#pragma once

/// \file codec.hpp
/// \brief Prüfer code for rooted aggregation trees (Section VI-A,
/// Algorithms 2 and 3).
///
/// The paper extends the classic Prüfer sequence to aggregation trees: the
/// sink is node 0 (the smallest label), every non-sink node knows its
/// parent, and the code is built by repeatedly stripping the largest-label
/// leaf and appending its parent.  A tree on n nodes costs only n-2
/// integers, and the number of children of any non-sink node can be read
/// off the code without decoding (Eq. 23) — which is exactly what the
/// lifetime formula needs.
///
/// Implementation note: Algorithm 3's final step appends `p_{n-2}` as
/// `d_{n-1}`.  That is only correct when the last code entry is not the
/// sink (it happens to hold in the paper's example); for a star centered at
/// the sink it would emit a self-loop.  We use the generally correct rule —
/// `d_{n-1}` is the largest label never assigned during the main loop — and
/// verify round-trips in the test suite (including stars).
///
/// Both encode and decode run in O(n log n), as stated in the paper.

#include <vector>

#include "common/check.hpp"

namespace mrlc::prufer {

/// A rooted labeled tree as a parent array: parent[0] == -1 (node 0 is the
/// sink/root, per the paper's convention), parent[v] in [0, n) otherwise.
using ParentArray = std::vector<int>;

/// A Prüfer code; length n-2 for a tree on n >= 2 nodes (empty for n == 2).
using Code = std::vector<int>;

/// Validates shape (root 0, in-range parents, acyclic); throws on failure.
void validate_parent_array(const ParentArray& parent);

/// Forest variant: non-root nodes may carry parent -1 (detached subtree
/// roots after a node failure), but pointers must still be acyclic.
void validate_forest(const ParentArray& parent);

/// Algorithm 2.  Requires n >= 2.
Code encode(const ParentArray& parent);

/// Algorithm 3's removal sequence D = (d_1, ..., d_n); the tree's edges are
/// {(d_i, code_i)} for i < n-1 plus (d_{n-1}, d_n) with d_n = 0.
std::vector<int> decode_sequence(const Code& code, int node_count);

/// Decodes straight to a parent array (parent[d_i] = code_i; the node
/// paired with the sink in the final edge gets parent 0).
ParentArray decode(const Code& code, int node_count);

/// Eq. 23: children count of `v` read directly from the code — the number
/// of occurrences of v, plus one if v is the sink.
int children_from_code(const Code& code, int node_count, int v);

}  // namespace mrlc::prufer
