#include "prufer/updates.hpp"

#include <algorithm>

namespace mrlc::prufer {

std::vector<int> subtree_members(const ParentArray& parent, int root) {
  const int n = static_cast<int>(parent.size());
  MRLC_REQUIRE(root >= 0 && root < n, "root out of range");
  std::vector<int> members;
  for (int v = 0; v < n; ++v) {
    for (int w = v; w != -1; w = parent[static_cast<std::size_t>(w)]) {
      if (w == root) {
        members.push_back(v);
        break;
      }
    }
  }
  return members;
}

Code apply_parent_change(const Code& code, int node_count, int child,
                         int new_parent) {
  MRLC_REQUIRE(child > 0 && child < node_count, "child must be a non-sink node");
  MRLC_REQUIRE(new_parent >= 0 && new_parent < node_count, "new parent out of range");
  MRLC_REQUIRE(child != new_parent, "node cannot parent itself");

  ParentArray parent = decode(code, node_count);
  // Cycle guard: the new parent must not live under the child.
  for (int w = new_parent; w != -1; w = parent[static_cast<std::size_t>(w)]) {
    if (w == child) {
      throw InfeasibleError(
          "parent change would create a cycle (new parent is in the child's subtree)");
    }
  }
  parent[static_cast<std::size_t>(child)] = new_parent;
  return encode(parent);
}

ParentArray& evert_and_attach(ParentArray& parent, int subtree_root,
                              int new_local_root, int attach_to) {
  const int n = static_cast<int>(parent.size());
  MRLC_REQUIRE(subtree_root > 0 && subtree_root < n, "subtree root must be non-sink");
  MRLC_REQUIRE(new_local_root >= 0 && new_local_root < n, "new local root out of range");
  MRLC_REQUIRE(attach_to >= 0 && attach_to < n, "attach target out of range");

  // Collect the path new_local_root -> subtree_root; it must exist (the new
  // local root is inside the subtree) and must not contain attach_to.
  std::vector<int> path;
  bool found = false;
  for (int w = new_local_root; w != -1; w = parent[static_cast<std::size_t>(w)]) {
    path.push_back(w);
    if (w == subtree_root) {
      found = true;
      break;
    }
  }
  MRLC_REQUIRE(found, "new local root is not inside the subtree");
  const std::vector<int> members = subtree_members(parent, subtree_root);
  MRLC_REQUIRE(std::find(members.begin(), members.end(), attach_to) == members.end(),
               "attach target lies inside the subtree being re-rooted");

  // Reverse parent pointers along the path, then hang the new root outside.
  for (std::size_t i = path.size(); i-- > 1;) {
    parent[static_cast<std::size_t>(path[i])] = path[i - 1];
  }
  parent[static_cast<std::size_t>(new_local_root)] = attach_to;
  // Forest-tolerant check: during node-failure repair the array may still
  // hold other detached subtrees (parent -1), which are fine here.
  validate_forest(parent);
  return parent;
}

}  // namespace mrlc::prufer
