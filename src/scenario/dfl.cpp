#include "scenario/dfl.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace mrlc::scenario {

int dfl_node_count(const DflConfig& config) {
  MRLC_REQUIRE(config.side_m > 0.0 && config.spacing_m > 0.0,
               "geometry must be positive");
  const double per_side = config.side_m / config.spacing_m;
  const int steps = static_cast<int>(std::lround(per_side));
  MRLC_REQUIRE(std::abs(per_side - steps) < 1e-9,
               "side length must be a multiple of the spacing");
  return 4 * steps;  // corners are shared between sides
}

namespace {

std::vector<std::pair<double, double>> perimeter_positions(const DflConfig& config,
                                                           int node_count) {
  std::vector<std::pair<double, double>> pos;
  pos.reserve(static_cast<std::size_t>(node_count));
  const int per_side = node_count / 4;
  const double s = config.spacing_m;
  const double side = config.side_m;
  for (int i = 0; i < per_side; ++i) pos.emplace_back(s * i, 0.0);          // bottom
  for (int i = 0; i < per_side; ++i) pos.emplace_back(side, s * i);        // right
  for (int i = 0; i < per_side; ++i) pos.emplace_back(side - s * i, side); // top
  for (int i = 0; i < per_side; ++i) pos.emplace_back(0.0, side - s * i);  // left
  return pos;
}

/// Beacon-based PRR estimation (paper Eq. 2): q̂ = received / sent over
/// `rounds` broadcast beacons.
double estimate_prr(double true_prr, int rounds, Rng& rng) {
  int received = 0;
  for (int r = 0; r < rounds; ++r) received += rng.bernoulli(true_prr) ? 1 : 0;
  return static_cast<double>(received) / static_cast<double>(rounds);
}

}  // namespace

DflSystem make_dfl_system(const DflConfig& config) {
  MRLC_REQUIRE(config.beacon_rounds >= 1, "need at least one beacon round");
  MRLC_REQUIRE(config.min_link_prr > 0.0 && config.min_link_prr < 1.0,
               "link PRR floor must lie in (0, 1)");
  config.propagation.validate();

  const int n = dfl_node_count(config);
  Rng rng(config.seed);

  DflSystem system{wsn::Network(n, /*sink=*/0), perimeter_positions(config, n), {}};
  for (wsn::VertexId v = 0; v < n; ++v) {
    system.network.set_initial_energy(v, config.initial_energy_j);
  }

  const double tx_dbm = radio::telosb_tx_power_dbm(config.tx_power_level);
  for (wsn::VertexId u = 0; u < n; ++u) {
    for (wsn::VertexId v = u + 1; v < n; ++v) {
      const auto& [ux, uy] = system.positions_m[static_cast<std::size_t>(u)];
      const auto& [vx, vy] = system.positions_m[static_cast<std::size_t>(v)];
      const double dist = std::hypot(ux - vx, uy - vy);
      // A fixed shadowing draw per link: deployed links have a static
      // quality, randomized across links by the environment.
      const double truth = radio::sample_prr(config.propagation, tx_dbm, dist, rng);
      const double estimate = std::min(
          estimate_prr(truth, config.beacon_rounds, rng), config.estimate_cap);
      if (estimate < config.min_link_prr) continue;  // unusable pair
      system.network.add_link(u, v, estimate);
      system.true_prr.push_back(truth);
    }
  }

  system.network.validate();  // throws InfeasibleError if disconnected
  return system;
}

}  // namespace mrlc::scenario
