#pragma once

/// \file random_net.hpp
/// \brief Random G(n, p) network instances (Section VII-B).
///
/// The paper's random-graph experiments: 16 nodes, each possible link
/// present independently with probability 70%, link quality uniform in
/// (0.95, 1), initial energy either fixed at 3000 J or uniform in
/// [1500 J, 5000 J].  Disconnected draws are re-rolled (a disconnected
/// instance has no aggregation tree at all).

#include <cstdint>

#include "common/rng.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::scenario {

struct RandomNetworkConfig {
  int node_count = 16;
  double link_probability = 0.7;
  double prr_min = 0.95;
  double prr_max = 1.0;
  double energy_min_j = 3000.0;
  double energy_max_j = 3000.0;
  int max_redraws = 1000;  ///< connectivity retries before giving up
};

/// Draws one connected random instance using `rng`.
/// \throws InfeasibleError if no connected draw is found within
///         `max_redraws` attempts (pathologically low link probability).
wsn::Network make_random_network(const RandomNetworkConfig& config, Rng& rng);

/// Rectangular 4-neighbor grid deployment for scale benchmarks.  Unlike
/// `make_random_network` this is O(nodes): the topology is deterministic
/// (sink at cell (0, 0), links between lattice neighbors only), always
/// connected, and never redrawn — the only randomness is the per-link PRR
/// and per-node energy draws.  A 400 x 250 grid gives the 100k-node
/// instance the `dataplane_des_n100k` workload simulates.
struct GridNetworkConfig {
  int rows = 10;
  int cols = 10;
  double prr_min = 0.85;
  double prr_max = 0.99;
  double energy_min_j = 3000.0;
  double energy_max_j = 3000.0;
};

/// Builds the grid; `rng` draws PRRs (row-major, horizontal link before
/// vertical per cell) and then energies, so instances are reproducible
/// from the seed alone.
wsn::Network make_grid_network(const GridNetworkConfig& config, Rng& rng);

/// Shortest-hop (BFS) spanning tree rooted at the sink — the O(n) initial
/// tree for instances too large to run IRA on.
wsn::AggregationTree bfs_spanning_tree(const wsn::Network& net);

/// Copy of `net` with every link of PRR < `min_prr` removed — the paper's
/// preprocessing for AAML ("we ignore unreliable links with the packet
/// reception ratio lower than 0.95").
/// \throws InfeasibleError if the filtered topology is disconnected.
wsn::Network filter_links(const wsn::Network& net, double min_prr);

}  // namespace mrlc::scenario
