#include "scenario/random_net.hpp"

#include "graph/traversal.hpp"

namespace mrlc::scenario {

wsn::Network make_random_network(const RandomNetworkConfig& config, Rng& rng) {
  MRLC_REQUIRE(config.node_count >= 2, "need at least two nodes");
  MRLC_REQUIRE(config.link_probability > 0.0 && config.link_probability <= 1.0,
               "link probability must lie in (0, 1]");
  MRLC_REQUIRE(config.prr_min > 0.0 && config.prr_min <= config.prr_max &&
                   config.prr_max <= 1.0,
               "PRR range must lie in (0, 1] and be ordered");
  MRLC_REQUIRE(config.energy_min_j > 0.0 && config.energy_min_j <= config.energy_max_j,
               "energy range must be positive and ordered");

  for (int attempt = 0; attempt < config.max_redraws; ++attempt) {
    wsn::Network net(config.node_count, /*sink=*/0);
    for (wsn::VertexId v = 0; v < config.node_count; ++v) {
      net.set_initial_energy(v, rng.uniform(config.energy_min_j, config.energy_max_j));
    }
    for (wsn::VertexId u = 0; u < config.node_count; ++u) {
      for (wsn::VertexId v = u + 1; v < config.node_count; ++v) {
        if (!rng.bernoulli(config.link_probability)) continue;
        net.add_link(u, v, rng.uniform(config.prr_min, config.prr_max));
      }
    }
    if (graph::is_connected(net.topology())) return net;
  }
  throw InfeasibleError("failed to draw a connected random network");
}

wsn::Network make_grid_network(const GridNetworkConfig& config, Rng& rng) {
  MRLC_REQUIRE(config.rows >= 1 && config.cols >= 1 &&
                   config.rows * config.cols >= 2,
               "grid needs at least two cells");
  MRLC_REQUIRE(config.prr_min > 0.0 && config.prr_min <= config.prr_max &&
                   config.prr_max <= 1.0,
               "PRR range must lie in (0, 1] and be ordered");
  MRLC_REQUIRE(config.energy_min_j > 0.0 &&
                   config.energy_min_j <= config.energy_max_j,
               "energy range must be positive and ordered");

  const int n = config.rows * config.cols;
  wsn::Network net(n, /*sink=*/0);
  auto cell = [&](int r, int c) {
    return static_cast<wsn::VertexId>(r * config.cols + c);
  };
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      if (c + 1 < config.cols) {
        net.add_link(cell(r, c), cell(r, c + 1),
                     rng.uniform(config.prr_min, config.prr_max));
      }
      if (r + 1 < config.rows) {
        net.add_link(cell(r, c), cell(r + 1, c),
                     rng.uniform(config.prr_min, config.prr_max));
      }
    }
  }
  for (wsn::VertexId v = 0; v < n; ++v) {
    net.set_initial_energy(v,
                           rng.uniform(config.energy_min_j, config.energy_max_j));
  }
  return net;
}

wsn::AggregationTree bfs_spanning_tree(const wsn::Network& net) {
  graph::BfsTree bfs = graph::bfs_tree(net.topology(), net.sink());
  std::vector<wsn::VertexId> parents = std::move(bfs.parent_vertex);
  parents[static_cast<std::size_t>(net.sink())] = -1;
  return wsn::AggregationTree::from_parents(net, std::move(parents));
}

wsn::Network filter_links(const wsn::Network& net, double min_prr) {
  MRLC_REQUIRE(min_prr > 0.0 && min_prr <= 1.0, "PRR floor must lie in (0, 1]");
  wsn::Network out(net.node_count(), net.sink(), net.energy_model());
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    out.set_initial_energy(v, net.initial_energy(v));
  }
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    if (net.link_prr(id) < min_prr) continue;
    const graph::Edge& e = net.topology().edge(id);
    out.add_link(e.u, e.v, net.link_prr(id));
  }
  out.validate();
  return out;
}

}  // namespace mrlc::scenario
