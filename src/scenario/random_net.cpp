#include "scenario/random_net.hpp"

#include "graph/traversal.hpp"

namespace mrlc::scenario {

wsn::Network make_random_network(const RandomNetworkConfig& config, Rng& rng) {
  MRLC_REQUIRE(config.node_count >= 2, "need at least two nodes");
  MRLC_REQUIRE(config.link_probability > 0.0 && config.link_probability <= 1.0,
               "link probability must lie in (0, 1]");
  MRLC_REQUIRE(config.prr_min > 0.0 && config.prr_min <= config.prr_max &&
                   config.prr_max <= 1.0,
               "PRR range must lie in (0, 1] and be ordered");
  MRLC_REQUIRE(config.energy_min_j > 0.0 && config.energy_min_j <= config.energy_max_j,
               "energy range must be positive and ordered");

  for (int attempt = 0; attempt < config.max_redraws; ++attempt) {
    wsn::Network net(config.node_count, /*sink=*/0);
    for (wsn::VertexId v = 0; v < config.node_count; ++v) {
      net.set_initial_energy(v, rng.uniform(config.energy_min_j, config.energy_max_j));
    }
    for (wsn::VertexId u = 0; u < config.node_count; ++u) {
      for (wsn::VertexId v = u + 1; v < config.node_count; ++v) {
        if (!rng.bernoulli(config.link_probability)) continue;
        net.add_link(u, v, rng.uniform(config.prr_min, config.prr_max));
      }
    }
    if (graph::is_connected(net.topology())) return net;
  }
  throw InfeasibleError("failed to draw a connected random network");
}

wsn::Network filter_links(const wsn::Network& net, double min_prr) {
  MRLC_REQUIRE(min_prr > 0.0 && min_prr <= 1.0, "PRR floor must lie in (0, 1]");
  wsn::Network out(net.node_count(), net.sink(), net.energy_model());
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    out.set_initial_energy(v, net.initial_energy(v));
  }
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    if (net.link_prr(id) < min_prr) continue;
    const graph::Edge& e = net.topology().edge(id);
    out.add_link(e.u, e.v, net.link_prr(id));
  }
  out.validate();
  return out;
}

}  // namespace mrlc::scenario
