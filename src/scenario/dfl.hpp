#pragma once

/// \file dfl.hpp
/// \brief Synthetic Device-Free-Localization testbed (Section VII, Fig. 6).
///
/// The paper evaluates on trace data from a DFL system: 16 TelosB motes on
/// 0.9 m tripods along the perimeter of a 3.6 m x 3.6 m square, 0.9 m
/// apart, node 0 the sink, 3000 J batteries, and link qualities estimated
/// from 1000 broadcast beacon rounds.  We do not have that trace; this
/// module regenerates an equivalent instance from the published geometry:
/// true PRRs come from the calibrated radio model (`radio/propagation.hpp`)
/// at the actual pairwise distances, and the *network* sees only the
/// beacon-estimated PRRs — the same estimator the real system used (Eq. 2).

#include <cstdint>
#include <utility>
#include <vector>

#include "radio/propagation.hpp"
#include "wsn/network.hpp"

namespace mrlc::scenario {

/// Default radio model for the DFL hall: the Fig. 2 calibration plus a
/// higher shadowing sigma (4.5 dB vs the open-space 3.2 dB) — the testbed
/// room's multipath is what gives the paper's trace its wide quality
/// spread (their Fig. 7 AAML/MST cost ratio of ~7 requires mid-quality
/// links well below the short-distance mean).
inline radio::PropagationParams dfl_default_propagation() {
  radio::PropagationParams params;
  params.shadowing_sigma_db = 4.5;
  return params;
}

struct DflConfig {
  double side_m = 3.6;           ///< square side
  double spacing_m = 0.9;        ///< distance between adjacent tripods
  int tx_power_level = 19;       ///< TelosB power register (paper Fig. 2)
  radio::PropagationParams propagation = dfl_default_propagation();
  int beacon_rounds = 1000;      ///< beacons used to estimate each link PRR
  double min_link_prr = 0.05;    ///< estimated-PRR floor below which a pair
                                 ///< is not registered as a link
  /// Cap on the *estimated* PRR: a finite beacon sample cannot certify a
  /// perfect link, so "1000 of 1000 received" is recorded as this value
  /// (just under 1 - 1/(2*rounds)) rather than exactly 1.0.
  double estimate_cap = 0.9995;
  double initial_energy_j = 3000.0;  ///< two AA batteries
  /// Default instance chosen (by scanning seeds) to be structurally
  /// representative of the paper's trace: AAML/MST cost ratio ~7, a real
  /// cost/lifetime tension at LC = L_AAML (IRA@L_AAML strictly above the
  /// MST cost), and the >= 0.95 filtered graph connected.
  std::uint64_t seed = 23;
};

/// One generated testbed instance.
struct DflSystem {
  wsn::Network network;
  std::vector<std::pair<double, double>> positions_m;  ///< per node (x, y)
  /// Ground-truth PRR per registered link (the network itself stores the
  /// beacon *estimates*, as the real deployment would).
  std::vector<double> true_prr;
};

/// Node count implied by the geometry (16 for the paper's defaults).
int dfl_node_count(const DflConfig& config);

/// Generates the testbed.  Node 0 (the sink) sits at a corner and the rest
/// follow the perimeter clockwise.  Throws InfeasibleError if the generated
/// link set is disconnected (cannot happen with the default radio model:
/// adjacent tripods are 0.9 m apart and essentially loss-free).
DflSystem make_dfl_system(const DflConfig& config = {});

}  // namespace mrlc::scenario
