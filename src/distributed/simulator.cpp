#include "distributed/simulator.hpp"

#include <algorithm>
#include <queue>

#include "prufer/updates.hpp"

namespace mrlc::dist {

bool SensorReplica::apply(const UpdateRecord& record) {
  if (record.sequence <= last_applied_) return false;
  last_applied_ = record.sequence;
  prufer::ParentArray parents = prufer::decode(code_, node_count_);
  for (const auto& [child, parent] : record.changes) {
    MRLC_REQUIRE(child > 0 && child < node_count_, "record child out of range");
    MRLC_REQUIRE(parent >= 0 && parent < node_count_, "record parent out of range");
    parents[static_cast<std::size_t>(child)] = parent;
  }
  prufer::validate_parent_array(parents);
  code_ = prufer::encode(parents);
  return true;
}

ProtocolSimulator::ProtocolSimulator(const wsn::Network& net,
                                     wsn::AggregationTree initial,
                                     double lifetime_bound, MaintainerOptions options)
    : maintainer_(net, std::move(initial), lifetime_bound, options) {
  replicas_.reserve(static_cast<std::size_t>(net.node_count()));
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    // The sink computes the initial code and broadcasts it once; we charge
    // that startup flood to the stats.
    replicas_.emplace_back(v, maintainer_.code(), net.node_count());
  }
  UpdateRecord bootstrap;
  bootstrap.sequence = 0;  // replicas already hold it; count the radio cost only
  bootstrap.initiator = 0;
  stats_.flood_transmissions += flood(bootstrap);
  stats_.records_disseminated = 0;  // the bootstrap is not an update record
  stats_.transmissions_per_event.clear();
}

const SensorReplica& ProtocolSimulator::replica(wsn::VertexId v) const {
  MRLC_REQUIRE(v >= 0 && v < static_cast<int>(replicas_.size()), "node out of range");
  return replicas_[static_cast<std::size_t>(v)];
}

int ProtocolSimulator::flood(const UpdateRecord& record) {
  // Broadcast flood over the *current* tree: each transmission reaches all
  // tree neighbours; nodes forward once if they have anywhere to forward.
  const wsn::AggregationTree& tree = maintainer_.tree();
  const int n = tree.node_count();

  // Tree adjacency.
  std::vector<std::vector<wsn::VertexId>> adjacent(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    const wsn::VertexId p = tree.parent(v);
    if (p != -1) {
      adjacent[static_cast<std::size_t>(v)].push_back(p);
      adjacent[static_cast<std::size_t>(p)].push_back(v);
    }
  }

  const wsn::VertexId initiator = record.initiator == -1 ? 0 : record.initiator;
  std::vector<bool> heard(static_cast<std::size_t>(n), false);
  std::queue<wsn::VertexId> to_transmit;
  int transmissions = 0;

  heard[static_cast<std::size_t>(initiator)] = true;
  to_transmit.push(initiator);
  while (!to_transmit.empty()) {
    const wsn::VertexId sender = to_transmit.front();
    to_transmit.pop();
    ++transmissions;  // one radio broadcast reaches all tree neighbours
    for (wsn::VertexId neighbour : adjacent[static_cast<std::size_t>(sender)]) {
      if (heard[static_cast<std::size_t>(neighbour)]) continue;
      heard[static_cast<std::size_t>(neighbour)] = true;
      if (record.sequence > 0) {
        replicas_[static_cast<std::size_t>(neighbour)].apply(record);
      }
      // Forward only if the node has neighbours that have not heard yet
      // (a leaf's only neighbour is its sender).
      if (adjacent[static_cast<std::size_t>(neighbour)].size() > 1) {
        to_transmit.push(neighbour);
      }
    }
  }
  MRLC_ENSURE(static_cast<int>(std::count(heard.begin(), heard.end(), true)) == n,
              "flood failed to reach every node of a spanning tree");
  return transmissions;
}

int ProtocolSimulator::disseminate(const std::vector<wsn::VertexId>& before,
                                   const std::vector<wsn::VertexId>& after) {
  UpdateRecord record;
  record.sequence = next_sequence_++;
  for (std::size_t v = 0; v < before.size(); ++v) {
    if (before[v] != after[v]) {
      record.changes.emplace_back(static_cast<wsn::VertexId>(v), after[v]);
      if (record.initiator == -1) record.initiator = static_cast<wsn::VertexId>(v);
    }
  }
  MRLC_ENSURE(!record.changes.empty(), "disseminate called without a change");
  // The initiator applies locally, then floods.
  replicas_[static_cast<std::size_t>(record.initiator)].apply(record);
  const int transmissions = flood(record);
  ++stats_.records_disseminated;
  stats_.flood_transmissions += transmissions;
  return transmissions;
}

bool ProtocolSimulator::on_link_degraded(const wsn::Network& net, wsn::EdgeId link) {
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  const bool changed = maintainer_.on_link_degraded(net, link);
  int transmissions = 0;
  if (changed) transmissions = disseminate(before, maintainer_.tree().parents());
  stats_.transmissions_per_event.push_back(transmissions);
  return changed;
}

bool ProtocolSimulator::on_link_improved(const wsn::Network& net, wsn::EdgeId link) {
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  const bool changed = maintainer_.on_link_improved(net, link);
  int transmissions = 0;
  if (changed) transmissions = disseminate(before, maintainer_.tree().parents());
  stats_.transmissions_per_event.push_back(transmissions);
  return changed;
}

bool ProtocolSimulator::replicas_consistent() const {
  for (const SensorReplica& replica : replicas_) {
    if (replica.code() != maintainer_.code()) return false;
  }
  return true;
}

}  // namespace mrlc::dist
