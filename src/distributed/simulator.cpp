#include "distributed/simulator.hpp"

#include <algorithm>
#include <queue>

#include "prufer/updates.hpp"

namespace mrlc::dist {

SensorReplica::SensorReplica(wsn::VertexId id, const prufer::Code& code,
                             int node_count)
    : id_(id),
      node_count_(node_count),
      parents_(prufer::decode(code, node_count)),
      code_(code) {}

void SensorReplica::apply_changes(const UpdateRecord& record) {
  std::vector<wsn::VertexId> next = parents_;
  for (const auto& [child, parent] : record.changes) {
    MRLC_REQUIRE(child > 0 && child < node_count_, "record child out of range");
    MRLC_REQUIRE(parent >= -1 && parent < node_count_, "record parent out of range");
    MRLC_REQUIRE(parent != child, "record parents a node to itself");
    next[static_cast<std::size_t>(child)] = parent;
  }
  const bool full = std::none_of(next.begin() + 1, next.end(),
                                 [](wsn::VertexId p) { return p == -1; });
  if (full) {
    prufer::validate_parent_array(next);
    code_ = node_count_ >= 2 ? prufer::encode(next) : prufer::Code{};
  } else {
    prufer::validate_forest(next);
    code_.clear();  // partial trees have no Prüfer code
  }
  parents_ = std::move(next);
}

bool SensorReplica::apply(const UpdateRecord& record) {
  if (record.sequence <= last_applied_) return false;
  apply_changes(record);
  last_applied_ = record.sequence;
  observe_sequence(record.sequence);
  log_.emplace(record.sequence, record);
  return true;
}

SensorReplica::Integration SensorReplica::integrate(const UpdateRecord& record) {
  MRLC_REQUIRE(record.sequence > 0, "integrate needs a real update record");
  observe_sequence(record.sequence);
  if (record.sequence <= last_applied_ || buffered_.count(record.sequence) > 0) {
    return Integration::kDuplicate;
  }
  buffered_.emplace(record.sequence, record);
  Integration result = Integration::kBuffered;
  // Drain the buffer while it starts exactly one past the applied prefix.
  for (auto it = buffered_.find(last_applied_ + 1); it != buffered_.end();
       it = buffered_.find(last_applied_ + 1)) {
    apply_changes(it->second);
    last_applied_ = it->first;
    log_.emplace(it->first, std::move(it->second));
    buffered_.erase(it);
    result = Integration::kApplied;
  }
  return result;
}

std::vector<std::uint64_t> SensorReplica::missing_sequences() const {
  std::vector<std::uint64_t> missing;
  for (std::uint64_t seq = last_applied_ + 1; seq <= known_latest_; ++seq) {
    if (buffered_.count(seq) == 0) missing.push_back(seq);
  }
  return missing;
}

bool SensorReplica::has_record(std::uint64_t sequence) const {
  return log_.count(sequence) > 0 || buffered_.count(sequence) > 0;
}

const UpdateRecord& SensorReplica::record(std::uint64_t sequence) const {
  if (auto it = log_.find(sequence); it != log_.end()) return it->second;
  const auto it = buffered_.find(sequence);
  MRLC_REQUIRE(it != buffered_.end(), "replica does not hold that record");
  return it->second;
}

ProtocolSimulator::ProtocolSimulator(const wsn::Network& net,
                                     wsn::AggregationTree initial,
                                     double lifetime_bound, MaintainerOptions options,
                                     FloodOptions flood)
    : maintainer_(net, std::move(initial), lifetime_bound, options),
      flood_(flood),
      rng_(flood.seed),
      channels_(net, flood.channel, rng_) {
  replicas_.reserve(static_cast<std::size_t>(net.node_count()));
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    // The sink computes the initial code and broadcasts it once; we charge
    // that startup flood to the stats.  The bootstrap itself is assumed
    // reliable (replicas are constructed pre-seeded) even in lossy mode.
    replicas_.emplace_back(v, maintainer_.code(), net.node_count());
  }
  UpdateRecord bootstrap;
  bootstrap.sequence = 0;  // replicas already hold it; count the radio cost only
  bootstrap.initiator = 0;
  stats_.flood_transmissions += flood_reliable(bootstrap);
}

const SensorReplica& ProtocolSimulator::replica(wsn::VertexId v) const {
  MRLC_REQUIRE(v >= 0 && v < static_cast<int>(replicas_.size()), "node out of range");
  return replicas_[static_cast<std::size_t>(v)];
}

std::vector<std::vector<std::pair<wsn::VertexId, wsn::EdgeId>>>
ProtocolSimulator::member_adjacency() const {
  const wsn::AggregationTree& tree = maintainer_.tree();
  const int n = tree.node_count();
  std::vector<std::vector<std::pair<wsn::VertexId, wsn::EdgeId>>> adjacent(
      static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    if (!tree.contains(v)) continue;  // off-tree subtrees keep stale pointers
    const wsn::VertexId p = tree.parent(v);
    if (p == -1) continue;
    const wsn::EdgeId id = tree.parent_edge(v);
    adjacent[static_cast<std::size_t>(v)].emplace_back(p, id);
    adjacent[static_cast<std::size_t>(p)].emplace_back(v, id);
  }
  return adjacent;
}

int ProtocolSimulator::flood(const wsn::Network& net, const UpdateRecord& record) {
  return flood_.lossy ? flood_lossy(net, record) : flood_reliable(record);
}

int ProtocolSimulator::flood_reliable(const UpdateRecord& record) {
  // Broadcast flood over the *current* tree: each transmission reaches all
  // tree neighbours; nodes forward once if they have anywhere to forward.
  const wsn::AggregationTree& tree = maintainer_.tree();
  const auto adjacent = member_adjacency();

  const wsn::VertexId initiator = record.initiator == -1 ? tree.root() : record.initiator;
  std::vector<bool> heard(adjacent.size(), false);
  std::queue<wsn::VertexId> to_transmit;
  int transmissions = 0;

  heard[static_cast<std::size_t>(initiator)] = true;
  to_transmit.push(initiator);
  while (!to_transmit.empty()) {
    const wsn::VertexId sender = to_transmit.front();
    to_transmit.pop();
    ++transmissions;  // one radio broadcast reaches all tree neighbours
    for (const auto& [neighbour, link] : adjacent[static_cast<std::size_t>(sender)]) {
      (void)link;
      if (heard[static_cast<std::size_t>(neighbour)]) continue;
      heard[static_cast<std::size_t>(neighbour)] = true;
      if (record.sequence > 0) {
        replicas_[static_cast<std::size_t>(neighbour)].apply(record);
      }
      // Forward only if the node has neighbours that have not heard yet
      // (a leaf's only neighbour is its sender).
      if (adjacent[static_cast<std::size_t>(neighbour)].size() > 1) {
        to_transmit.push(neighbour);
      }
    }
  }
  MRLC_ENSURE(static_cast<int>(std::count(heard.begin(), heard.end(), true)) ==
                  tree.member_count(),
              "reliable flood failed to reach every tree member");
  return transmissions;
}

int ProtocolSimulator::flood_lossy(const wsn::Network& net, const UpdateRecord& record) {
  // Same propagation pattern as flood_reliable, but each neighbour hears a
  // broadcast with probability link-PRR; a sender may re-broadcast up to
  // control_retx extra times while some tree neighbour is still missing the
  // record.  Nodes the flood never reaches are left stale (recovered later
  // by anti-entropy) and counted in flood_deliveries_missed.
  const wsn::AggregationTree& tree = maintainer_.tree();
  const auto adjacent = member_adjacency();
  channels_.sync(net);  // link qualities may have drifted since the last flood

  const wsn::VertexId initiator = record.initiator == -1 ? tree.root() : record.initiator;
  std::vector<bool> heard(adjacent.size(), false);
  std::queue<wsn::VertexId> to_transmit;
  int transmissions = 0;

  heard[static_cast<std::size_t>(initiator)] = true;
  to_transmit.push(initiator);
  while (!to_transmit.empty()) {
    const wsn::VertexId sender = to_transmit.front();
    to_transmit.pop();
    const auto& neighbours = adjacent[static_cast<std::size_t>(sender)];
    for (int attempt = 0; attempt <= flood_.control_retx; ++attempt) {
      const bool any_unheard =
          std::any_of(neighbours.begin(), neighbours.end(), [&](const auto& nb) {
            return !heard[static_cast<std::size_t>(nb.first)];
          });
      if (!any_unheard) break;
      ++transmissions;
      for (const auto& [neighbour, link] : neighbours) {
        if (heard[static_cast<std::size_t>(neighbour)]) continue;
        if (!channels_.transmit(link, rng_)) continue;
        heard[static_cast<std::size_t>(neighbour)] = true;
        if (record.sequence > 0) {
          replicas_[static_cast<std::size_t>(neighbour)].integrate(record);
        }
        if (adjacent[static_cast<std::size_t>(neighbour)].size() > 1) {
          to_transmit.push(neighbour);
        }
      }
    }
  }
  if (record.sequence > 0) {
    for (wsn::VertexId v = 0; v < tree.node_count(); ++v) {
      if (tree.contains(v) && !heard[static_cast<std::size_t>(v)]) {
        ++stats_.flood_deliveries_missed;
      }
    }
  }
  return transmissions;
}

int ProtocolSimulator::disseminate(const wsn::Network& net,
                                   const std::vector<wsn::VertexId>& before,
                                   const std::vector<wsn::VertexId>& after,
                                   wsn::VertexId initiator_hint) {
  UpdateRecord record;
  record.sequence = next_sequence_++;
  for (std::size_t v = 0; v < before.size(); ++v) {
    if (before[v] != after[v]) {
      record.changes.emplace_back(static_cast<wsn::VertexId>(v), after[v]);
    }
  }
  MRLC_ENSURE(!record.changes.empty(), "disseminate called without a change");

  // The flood source must be a live tree member: prefer the hint (e.g. the
  // node that detected a death), else the first changed node still on the
  // tree, else the sink.
  const wsn::AggregationTree& tree = maintainer_.tree();
  auto valid_initiator = [&](wsn::VertexId v) {
    return v >= 0 && v < tree.node_count() && tree.contains(v) &&
           !replicas_[static_cast<std::size_t>(v)].dead();
  };
  if (valid_initiator(initiator_hint)) {
    record.initiator = initiator_hint;
  } else {
    for (const auto& [child, parent] : record.changes) {
      (void)parent;
      if (valid_initiator(child)) {
        record.initiator = child;
        break;
      }
    }
    if (record.initiator == -1) record.initiator = tree.root();
  }

  // The initiator applies locally, then floods.
  SensorReplica& source = replicas_[static_cast<std::size_t>(record.initiator)];
  if (flood_.lossy) {
    source.integrate(record);
  } else {
    source.apply(record);
  }
  const int transmissions = flood(net, record);
  ++stats_.records_disseminated;
  stats_.flood_transmissions += transmissions;
  return transmissions;
}

bool ProtocolSimulator::on_link_degraded(const wsn::Network& net, wsn::EdgeId link) {
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  const bool changed = maintainer_.on_link_degraded(net, link);
  int transmissions = 0;
  if (changed) transmissions = disseminate(net, before, maintainer_.tree().parents());
  stats_.transmissions_per_event.push_back(transmissions);
  if (changed) resync(net);
  return changed;
}

bool ProtocolSimulator::on_link_improved(const wsn::Network& net, wsn::EdgeId link) {
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  const bool changed = maintainer_.on_link_improved(net, link);
  int transmissions = 0;
  if (changed) transmissions = disseminate(net, before, maintainer_.tree().parents());
  stats_.transmissions_per_event.push_back(transmissions);
  if (changed) resync(net);
  return changed;
}

RepairOutcome ProtocolSimulator::on_node_failed(wsn::Network& net, wsn::VertexId dead) {
  MRLC_REQUIRE(dead >= 0 && dead < static_cast<int>(replicas_.size()),
               "node out of range");
  net.fail_node(dead);  // idempotent; removes the dead node's links
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  // The dead node's former parent notices the silence and initiates.
  const wsn::VertexId hint = before[static_cast<std::size_t>(dead)];
  replicas_[static_cast<std::size_t>(dead)].mark_dead();
  const RepairOutcome outcome = maintainer_.on_node_failed(net, dead);
  int transmissions = 0;
  if (before != maintainer_.tree().parents()) {
    transmissions = disseminate(net, before, maintainer_.tree().parents(), hint);
  }
  stats_.transmissions_per_event.push_back(transmissions);
  resync(net);
  return outcome;
}

int ProtocolSimulator::retry_detached(const wsn::Network& net) {
  const std::vector<wsn::VertexId> before = maintainer_.tree().parents();
  const int rejoined = maintainer_.retry_detached(net);
  if (before != maintainer_.tree().parents()) {
    const int transmissions =
        disseminate(net, before, maintainer_.tree().parents());
    stats_.transmissions_per_event.push_back(transmissions);
    resync(net);
  }
  return rejoined;
}

int ProtocolSimulator::resync(const wsn::Network& net) {
  if (!flood_.lossy) return 0;
  const std::uint64_t latest = next_sequence_ - 1;
  if (latest == 0) return 0;
  const wsn::AggregationTree& tree = maintainer_.tree();
  const auto adjacent = member_adjacency();
  channels_.sync(net);

  auto live_member = [&](wsn::VertexId v) {
    return tree.contains(v) && !replicas_[static_cast<std::size_t>(v)].dead();
  };
  auto any_stale = [&]() {
    for (wsn::VertexId v = 0; v < tree.node_count(); ++v) {
      if (live_member(v) &&
          replicas_[static_cast<std::size_t>(v)].applied_sequence() < latest) {
        return true;
      }
    }
    return false;
  };

  int rounds = 0;
  while (any_stale()) {
    if (rounds == flood_.max_resync_rounds) {
      ++stats_.resync_exhausted;
      break;
    }
    ++rounds;
    ++stats_.resync_rounds;

    // Phase 1 — digest beacons: every member broadcasts its applied cursor;
    // each tree neighbour hears it with the link's PRR.  This is how a
    // replica that missed a flood entirely learns that it is behind.
    for (wsn::VertexId v = 0; v < tree.node_count(); ++v) {
      if (!live_member(v) || adjacent[static_cast<std::size_t>(v)].empty()) continue;
      ++stats_.digest_beacons;
      const std::uint64_t cursor =
          replicas_[static_cast<std::size_t>(v)].applied_sequence();
      for (const auto& [neighbour, link] : adjacent[static_cast<std::size_t>(v)]) {
        if (channels_.transmit(link, rng_)) {
          replicas_[static_cast<std::size_t>(neighbour)].observe_sequence(cursor);
        }
      }
    }

    // Phase 2 — pulls: a replica that knows of records it is missing asks
    // its best-informed tree neighbour for them (unicast request/response,
    // each retransmitted up to control_retx extra times).
    for (wsn::VertexId v = 0; v < tree.node_count(); ++v) {
      if (!live_member(v)) continue;
      SensorReplica& behind = replicas_[static_cast<std::size_t>(v)];
      const std::vector<std::uint64_t> missing = behind.missing_sequences();
      if (missing.empty()) continue;

      wsn::VertexId donor = -1;
      wsn::EdgeId donor_link = -1;
      std::uint64_t donor_cursor = behind.applied_sequence();
      for (const auto& [neighbour, link] : adjacent[static_cast<std::size_t>(v)]) {
        const std::uint64_t cursor =
            replicas_[static_cast<std::size_t>(neighbour)].applied_sequence();
        if (cursor > donor_cursor) {
          donor = neighbour;
          donor_link = link;
          donor_cursor = cursor;
        }
      }
      if (donor == -1) continue;  // nobody nearby is ahead yet

      bool delivered = false;
      for (int attempt = 0; attempt <= flood_.control_retx && !delivered; ++attempt) {
        ++stats_.resync_requests;
        delivered = channels_.transmit(donor_link, rng_);
      }
      if (!delivered) continue;

      const SensorReplica& source = replicas_[static_cast<std::size_t>(donor)];
      std::vector<const UpdateRecord*> batch;
      for (std::uint64_t seq : missing) {
        if (source.has_record(seq)) batch.push_back(&source.record(seq));
      }
      if (batch.empty()) continue;
      delivered = false;
      for (int attempt = 0; attempt <= flood_.control_retx && !delivered; ++attempt) {
        ++stats_.resync_responses;
        delivered = channels_.transmit(donor_link, rng_);
      }
      if (!delivered) continue;
      for (const UpdateRecord* rec : batch) behind.integrate(*rec);
    }
  }
  return rounds;
}

bool ProtocolSimulator::replicas_consistent() const {
  // Replicas of dead or partitioned nodes are unreachable by floods and go
  // stale by design; every live member must agree with the maintainer.
  const wsn::AggregationTree& tree = maintainer_.tree();
  for (wsn::VertexId v = 0; v < tree.node_count(); ++v) {
    if (!tree.contains(v)) continue;
    if (replicas_[static_cast<std::size_t>(v)].parents() != tree.parents()) {
      return false;
    }
  }
  return true;
}

}  // namespace mrlc::dist
