#include "distributed/dataplane.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {

DataPlaneResult run_dataplane(wsn::Network net, wsn::AggregationTree tree,
                              double lifetime_bound,
                              const DataPlaneOptions& options) {
  trace::ScopedPhase phase("dataplane");
  options.validate();
  options.arq.validate();
  const int n = net.node_count();
  const int links = net.link_count();

  Rng master(options.seed);
  Rng churn_rng = master.fork(1);
  Rng channel_rng = master.fork(2);
  Rng probe_rng = master.fork(3);

  ChurnProcess churn(net, options.churn);
  radio::ChannelSet channels(net, options.channel, channel_rng);

  // What the nodes believe: starts as the site survey (the true deployment
  // qualities) and is updated only by estimator events.  All repair
  // decisions in kEstimator mode are made on this view.
  wsn::Network believed = net;
  LinkEstimatorBank estimator(net, options.estimator);
  DistributedMaintainer maintainer(believed, std::move(tree), lifetime_bound,
                                   options.maintainer);

  // Earliest unmatched true-change round per link and direction, for the
  // detection-lag and false-positive accounting in kEstimator mode.
  std::vector<int> pending_degrade(static_cast<std::size_t>(links), -1);
  std::vector<int> pending_improve(static_cast<std::size_t>(links), -1);

  DataPlaneResult out;
  std::vector<double> consumed(static_cast<std::size_t>(n), 0.0);
  std::uint64_t delivered_total = 0;
  std::uint64_t data_tx_total = 0;
  std::uint64_t ack_tx_total = 0;
  std::uint64_t slots_total = 0;
  int complete_rounds = 0;
  double lag_sum = 0.0;

  radio::ArqObserver observer;
  if (options.repair == RepairMode::kEstimator) {
    observer = [&](wsn::EdgeId link, bool acked, int) {
      estimator.observe(link, acked);
    };
  }

  int completed_rounds = 0;
  for (int round = 0; round < options.rounds; ++round) {
    // Cooperative budget: one unit per round, charged at this serial point.
    // The loop body is deterministic given the round index, so an early
    // stop truncates the run at the same round for every configuration.
    if (options.budget != nullptr && !options.budget->charge(1)) break;
    ++completed_rounds;
    // 1. True link qualities drift; the channel processes follow.
    const std::vector<LinkEvent> oracle_events = churn.step(net, churn_rng);
    channels.sync(net);
    for (const LinkEvent& event : oracle_events) {
      if (options.repair == RepairMode::kOracle) {
        const bool changed =
            event.kind == LinkEvent::Kind::kDegraded
                ? maintainer.on_link_degraded(net, event.link)
                : maintainer.on_link_improved(net, event.link);
        (event.kind == LinkEvent::Kind::kDegraded ? out.degraded_events
                                                  : out.improved_events)++;
        if (changed) ++out.repairs_applied;
      } else if (options.repair == RepairMode::kEstimator) {
        std::vector<int>& pending = event.kind == LinkEvent::Kind::kDegraded
                                        ? pending_degrade
                                        : pending_improve;
        if (pending[static_cast<std::size_t>(event.link)] < 0) {
          pending[static_cast<std::size_t>(event.link)] = round;
        }
      }
    }

    // 2. One convergecast round under ARQ on the current tree; in
    // estimator mode every transaction outcome is an estimator sample.
    const radio::ArqRoundResult res =
        radio::simulate_arq_round(net, maintainer.tree(), options.arq, channels,
                                  channel_rng, &consumed, observer);
    delivered_total += static_cast<std::uint64_t>(res.readings_delivered - 1);
    data_tx_total += res.data_transmissions;
    ack_tx_total += res.ack_transmissions;
    slots_total += res.slots_elapsed;
    out.duplicates_suppressed +=
        static_cast<long long>(res.duplicates_suppressed);
    out.packets_dropped += static_cast<long long>(res.packets_dropped);
    if (res.round_complete) ++complete_rounds;

    if (options.repair != RepairMode::kEstimator) continue;

    // 3. Probe beacons sample idle links so improvements are noticed too.
    // Probes are short control frames; their energy is negligible next to
    // the data plane (same argument as the paper's idle-listening cut).
    if (options.probe_probability > 0.0) {
      const wsn::AggregationTree& current = maintainer.tree();
      std::vector<char> on_tree(static_cast<std::size_t>(links), 0);
      for (wsn::VertexId v = 0; v < n; ++v) {
        if (v == current.root() || !current.contains(v)) continue;
        on_tree[static_cast<std::size_t>(current.parent_edge(v))] = 1;
      }
      for (wsn::EdgeId id : net.topology().alive_edge_ids()) {
        if (on_tree[static_cast<std::size_t>(id)]) continue;
        if (!probe_rng.bernoulli(options.probe_probability)) continue;
        estimator.observe(id, channels.transmit(id, probe_rng));
      }
    }

    // 4. Estimator events drive the repairs, on the believed view.
    for (const LinkEvent& event : estimator.poll()) {
      believed.set_link_prr(event.link, event.new_prr);
      const bool changed =
          event.kind == LinkEvent::Kind::kDegraded
              ? maintainer.on_link_degraded(believed, event.link)
              : maintainer.on_link_improved(believed, event.link);
      (event.kind == LinkEvent::Kind::kDegraded ? out.degraded_events
                                                : out.improved_events)++;
      if (changed) ++out.repairs_applied;

      std::vector<int>& pending = event.kind == LinkEvent::Kind::kDegraded
                                      ? pending_degrade
                                      : pending_improve;
      int& since = pending[static_cast<std::size_t>(event.link)];
      if (since >= 0) {
        ++out.detections;
        static metrics::Histogram& lag_hist =
            metrics::histogram("dataplane.detection_lag_rounds");
        lag_hist.record(round - since);
        lag_sum += static_cast<double>(round - since);
        since = -1;
      } else {
        ++out.false_positive_events;
      }
    }
  }

  out.rounds = completed_rounds;
  // Normalize per-round statistics by the rounds actually simulated (the
  // max guards the all-budget-spent-up-front case against dividing by 0).
  const auto denom = static_cast<double>(std::max(1, completed_rounds));
  out.delivery_ratio =
      n > 1 ? static_cast<double>(delivered_total) /
                  (denom * static_cast<double>(n - 1))
            : 1.0;
  out.round_success_ratio = static_cast<double>(complete_rounds) / denom;
  out.avg_data_tx_per_round = static_cast<double>(data_tx_total) / denom;
  out.avg_ack_tx_per_round = static_cast<double>(ack_tx_total) / denom;
  out.avg_slots_per_round = static_cast<double>(slots_total) / denom;

  double joules_total = 0.0;
  out.measured_lifetime_rounds = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double joules = consumed[static_cast<std::size_t>(v)];
    joules_total += joules;
    const double rate = joules / denom;
    if (rate <= 0.0) continue;
    out.measured_lifetime_rounds =
        std::min(out.measured_lifetime_rounds, net.initial_energy(v) / rate);
  }
  out.joules_per_reading = delivered_total > 0
                               ? joules_total / static_cast<double>(delivered_total)
                               : std::numeric_limits<double>::infinity();

  if (options.repair == RepairMode::kEstimator) {
    out.mean_detection_lag_rounds =
        out.detections > 0 ? lag_sum / static_cast<double>(out.detections)
                           : std::numeric_limits<double>::quiet_NaN();
    for (int round_mark : pending_degrade) {
      if (round_mark >= 0) ++out.missed_events;
    }
    for (int round_mark : pending_improve) {
      if (round_mark >= 0) ++out.missed_events;
    }
    double mae = 0.0;
    for (wsn::EdgeId id = 0; id < links; ++id) {
      mae += std::abs(estimator.estimate(id) - net.link_prr(id));
    }
    out.estimate_mae = links > 0 ? mae / static_cast<double>(links) : 0.0;
  }

  out.final_reliability = wsn::tree_reliability(net, maintainer.tree());
  out.final_lifetime = wsn::network_lifetime(net, maintainer.tree());
  out.bound_met =
      wsn::meets_lifetime(net, maintainer.tree(), maintainer.lifetime_bound());

  static metrics::Counter& rounds_total = metrics::counter("dataplane.rounds");
  static metrics::Counter& degraded = metrics::counter("dataplane.degraded_events");
  static metrics::Counter& improved = metrics::counter("dataplane.improved_events");
  static metrics::Counter& repairs = metrics::counter("dataplane.repairs_applied");
  static metrics::Counter& detections = metrics::counter("dataplane.detections");
  static metrics::Counter& false_positives =
      metrics::counter("dataplane.false_positives");
  rounds_total.add(out.rounds);
  degraded.add(out.degraded_events);
  improved.add(out.improved_events);
  repairs.add(out.repairs_applied);
  detections.add(out.detections);
  false_positives.add(out.false_positive_events);
  return out;
}

}  // namespace mrlc::dist
