#include "distributed/dataplane.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "distributed/des_engine.hpp"
#include "distributed/logical_process.hpp"

namespace mrlc::dist {

namespace {

/// The legacy serial round loop, kept as the parity oracle for the
/// discrete-event engine.  It drives the *same* per-entity handlers and
/// serial-checkpoint methods as `run_des`, in plain ascending-id loops
/// with no queue, no pool, and no shards — so any divergence between the
/// two engines is a bug in the event machinery, not in the physics.
void run_legacy(engine::SimState& s) {
  const bool oracle = s.options->repair == RepairMode::kOracle;
  const bool estimator = s.estimator_mode();
  while (!s.stopped && s.completed_rounds < s.options->rounds) {
    const int planned = s.plan_window();
    if (planned == 0) break;
    const int start = s.window_start;
    std::vector<LinkEvent>* churn_fired =
        oracle || estimator ? &s.fired_churn[0] : nullptr;
    std::vector<LinkEvent>* est_fired = estimator ? &s.fired_est[0] : nullptr;
    for (int k = 0; k < planned; ++k) {
      // 1. True link qualities drift; each link's channel follows.
      for (wsn::EdgeId e = 0; e < s.links; ++e) s.churn_link(e, churn_fired);
      // 2. Oracle repairs land before the round's convergecast, exactly
      // as in the event engine's split round.
      if (oracle) s.apply_oracle_events();
      // 3. One ARQ transaction per non-root member.
      for (wsn::VertexId v = 0; v < s.n; ++v) s.transact_node(v, k, est_fired);
      // 4. Probe beacons sample idle links so improvements are noticed.
      if (s.probing()) {
        for (wsn::EdgeId e = 0; e < s.links; ++e) {
          if (s.on_tree[static_cast<std::size_t>(e)]) continue;
          if (!s.net.topology().is_alive(e)) continue;
          s.probe_link(e, est_fired);
        }
      }
      if (estimator) s.apply_pending_marks(start + k);
    }
    s.commit_window(planned);
    // 5. Estimator events repair on the believed view, after the
    // window's readings/energy are committed against the tree they ran on.
    if (estimator) s.apply_estimator_events(start);
    s.end_window(planned);
  }
  s.finalize();
}

}  // namespace

DataPlaneResult run_dataplane(wsn::Network net, wsn::AggregationTree tree,
                              double lifetime_bound,
                              const DataPlaneOptions& options) {
  trace::ScopedPhase phase("dataplane");
  options.validate();
  options.arq.validate();
  const int shard_count =
      options.engine == DataPlaneEngine::kDes
          ? std::max(1, static_cast<int>(default_thread_count()))
          : 1;
  engine::SimState s(std::move(net), std::move(tree), lifetime_bound, options,
                     shard_count);
  if (options.engine == DataPlaneEngine::kDes) {
    engine::run_des(s);
  } else {
    run_legacy(s);
  }
  return s.out;
}

}  // namespace mrlc::dist
