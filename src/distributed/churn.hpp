#pragma once

/// \file churn.hpp
/// \brief Stochastic link-quality drift driving the distributed protocol.
///
/// Real deployments see link qualities wander (people moving through the
/// DFL hall, humidity, interference).  This module models each link's cost
/// as a mean-reverting Gauss-Markov process in cost (-log PRR) space:
///
///     cost' = cost + theta * (anchor - cost) + sigma * N(0, 1)
///
/// clamped to the valid PRR domain.  `anchor` is the link's cost at
/// deployment, so qualities fluctuate around what the site survey measured
/// rather than drifting without bound.
///
/// After each step the process classifies links whose quality moved past a
/// relative threshold as *degraded* or *improved* events — exactly the two
/// triggers of the paper's Section VI protocol — so a simulation loop is:
///
///     for (auto& event : churn.step(net, rng))
///       event.kind == LinkEvent::kDegraded
///           ? maintainer.on_link_degraded(net, event.link)
///           : maintainer.on_link_improved(net, event.link);

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

struct LinkEvent {
  enum class Kind { kDegraded, kImproved };
  wsn::EdgeId link = -1;
  Kind kind = Kind::kDegraded;
  double old_prr = 0.0;
  double new_prr = 0.0;
};

struct ChurnOptions {
  double mean_reversion = 0.05;      ///< theta: pull toward the anchor cost
  double cost_noise_sigma = 0.01;    ///< sigma of the per-step cost shock
  double min_prr = 0.01;             ///< clamp floor
  double max_prr = 0.999;            ///< clamp ceiling
  /// Relative PRR change (vs the value at the last *reported* event) that
  /// qualifies as an event; smaller changes stay silent, as a real
  /// link-estimator would not re-broadcast noise.
  double event_threshold = 0.05;
};

/// Mutates a network's link qualities over time and reports events.
class ChurnProcess {
 public:
  /// \brief Anchors the process at the network's current link qualities.
  /// \param net  the deployed network; its PRRs become the anchors.
  /// \param options  drift/noise/threshold knobs.
  ChurnProcess(const wsn::Network& net, ChurnOptions options = {});

  /// \brief Advances every link one step.
  /// \param net  must be the network the process was anchored to (same
  ///        link count); the new qualities are written into it.
  /// \param rng  randomness source for the Gaussian shocks.
  /// \return the links whose change crossed the event threshold.
  std::vector<LinkEvent> step(wsn::Network& net, Rng& rng);

  /// \brief Advances a single link one step — the per-link half of `step`,
  /// exposed for engines that drive each link from its own forked RNG
  /// stream (the discrete-event data plane).  Touches only per-link state,
  /// so concurrent calls on *distinct* links are safe.
  /// \return the event when the change crossed the threshold.
  std::optional<LinkEvent> step_link(wsn::Network& net, wsn::EdgeId id, Rng& rng);

  const ChurnOptions& options() const noexcept { return options_; }
  int steps_taken() const noexcept { return steps_; }

 private:
  ChurnOptions options_;
  std::vector<double> anchor_cost_;    ///< deployment-time cost per link
  std::vector<double> reported_prr_;   ///< PRR at the last reported event
  double min_cost_ = 0.0;              ///< prr_to_cost(max_prr)
  double max_cost_ = 0.0;              ///< prr_to_cost(min_prr)
  int steps_ = 0;
};

}  // namespace mrlc::dist
