#pragma once

/// \file link_estimator.hpp
/// \brief Online per-link PRR estimation from observed data-plane traffic.
///
/// `dist::churn` is an *oracle*: it mutates the true link qualities and
/// tells the Section-VI protocol exactly which links crossed the event
/// threshold.  Deployed sensors have no such oracle — they infer quality
/// from what their radios actually observe: ARQ transaction outcomes on
/// tree links (did the ACK come back?) and occasional probe beacons on
/// idle links.  This module closes that loop.
///
/// Each link carries an EWMA success estimate seeded from the site-survey
/// PRR (the deployment-time value):
///
///     est <- (1 - alpha) * est + alpha * outcome
///
/// After a warm-up of `min_samples` observations, hysteresis thresholds
/// compare the estimate against the value at the last *reported* event:
/// a relative drop beyond `degrade_threshold` emits a kDegraded
/// `LinkEvent`, a relative rise beyond `improve_threshold` emits
/// kImproved, and anything inside the deadband stays silent.  The
/// thresholds are deliberately asymmetric (improve > degrade): flapping a
/// tree rebuild costs a flood, so improvements must clear a higher bar —
/// classic estimator hysteresis.
///
/// Because senders observe *ACK outcomes*, the estimate tracks
/// q_data * q_ack rather than q_data alone — an honest bias every real
/// convergecast stack shares (a lost ACK is indistinguishable from a lost
/// frame).  `sample_compensation` optionally divides it back out using the
/// ARQ policy's nominal ACK reliability.
///
/// Under burst loss the estimator will sometimes fire on a streak of bad
/// luck rather than a genuine quality change; `bench/extra_arq_dataplane`
/// counts those false-positive repairs.

#include <optional>
#include <vector>

#include "distributed/churn.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

struct EstimatorOptions {
  double ewma_alpha = 0.08;        ///< weight of the newest sample
  int min_samples = 10;            ///< warm-up before any event may fire
  double degrade_threshold = 0.15; ///< relative drop vs last report
  double improve_threshold = 0.25; ///< relative rise vs last report (hysteresis)
  double min_prr = 0.01;           ///< estimate clamp floor (cost stays finite)
  double max_prr = 0.999;          ///< estimate clamp ceiling
  /// Divides ACK-based samples by this factor to undo the q_ack bias
  /// (1 = no compensation).  Set to the ARQ policy's nominal ack_prr at the
  /// survey PRR when the data plane reports ACK outcomes.
  double sample_compensation = 1.0;

  void validate() const {
    MRLC_REQUIRE(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                 "EWMA alpha must lie in (0, 1]");
    MRLC_REQUIRE(min_samples >= 1, "need at least one warm-up sample");
    MRLC_REQUIRE(degrade_threshold > 0.0 && improve_threshold > 0.0,
                 "thresholds must be positive");
    MRLC_REQUIRE(min_prr > 0.0 && min_prr < max_prr && max_prr <= 1.0,
                 "PRR clamps must satisfy 0 < min < max <= 1");
    MRLC_REQUIRE(sample_compensation > 0.0 && sample_compensation <= 1.0,
                 "sample compensation must lie in (0, 1]");
  }
};

/// One EWMA estimator per network link, plus the pending-event queue.
class LinkEstimatorBank {
 public:
  /// \brief Seeds every estimator at the network's current (site-survey)
  /// PRRs.
  /// \param net  the deployed network (fixes the link-id space).
  /// \param options  EWMA/hysteresis knobs (validated on entry).
  explicit LinkEstimatorBank(const wsn::Network& net,
                             EstimatorOptions options = {});

  /// \brief Feeds one observed transaction outcome into a link's estimator;
  /// may queue a LinkEvent once warm.
  /// \param link  the observed link's edge id.
  /// \param success  true when the transaction succeeded (ACK received).
  void observe(wsn::EdgeId link, bool success);

  /// \brief `observe` without the pending-event queue: the fired event (if
  /// any) is returned to the caller instead of being staged for `poll`.
  /// Touches only the link's own `State`, so concurrent calls on
  /// *distinct* links are safe — the discrete-event engine collects the
  /// returned events per shard and merges them at a serial checkpoint in
  /// link-id order.  With at most one observation per link per round the
  /// supersede logic of the queued path never triggers, so the two paths
  /// update estimates and `reported` identically.
  std::optional<LinkEvent> observe_detached(wsn::EdgeId link, bool success);

  /// \brief Drains the events queued since the last poll.
  /// \return at most one event per link per poll; a later observation
  ///         supersedes an earlier queued event on the same link.
  std::vector<LinkEvent> poll();

  double estimate(wsn::EdgeId link) const;
  long long sample_count(wsn::EdgeId link) const;
  /// The estimate at the last reported event (== the deployment PRR until
  /// the first event fires).
  double reported(wsn::EdgeId link) const;

  /// Writes the current estimates into `view`'s link PRRs — the "what the
  /// nodes believe" network the maintainer repairs against.  `view` must
  /// share the anchored network's topology.
  void write_estimates(wsn::Network& view) const;

  const EstimatorOptions& options() const noexcept { return options_; }

 private:
  /// Raw estimates track the observed success indicator (q * q_ack for ACK
  /// samples); `compensated` divides the bias back out for consumers.  The
  /// hysteresis ratios are bias-invariant, so events fire identically
  /// either way.
  double compensated(double raw) const;

  struct State {
    double estimate = 1.0;  ///< raw EWMA of observed outcomes
    double reported = 1.0;  ///< raw estimate at the last reported event
    long long samples = 0;
    int pending = -1;  ///< index into pending_ while an event is queued
  };

  EstimatorOptions options_;
  std::vector<State> links_;
  std::vector<LinkEvent> pending_;
};

}  // namespace mrlc::dist
