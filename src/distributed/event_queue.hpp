#pragma once

/// \file event_queue.hpp
/// \brief Timestamp-ordered event queue for the discrete-event data plane.
///
/// Virtual time is counted in *slots*, the same unit `radio::arq` charges
/// for attempts and backoff gaps.  A round occupies a fixed span of slots
/// (see `des_engine.hpp`), so event timestamps encode both the round index
/// and the intra-round phase.  Events are totally ordered by
/// `(time, node, seq)` — the serial-checkpoint merge order the repo's
/// determinism discipline prescribes — which makes queue behavior
/// independent of insertion order and therefore of thread count.
///
/// The queue is a plain binary min-heap.  Each worker shard owns one
/// queue, so no locking is needed; the conservative engine only ever pops
/// events strictly below the current safe horizon.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mrlc::dist {

/// Virtual time in ARQ slots.
using SlotTime = std::uint64_t;

enum class EventKind : std::uint8_t {
  kNodeRound,    ///< fused churn+transaction(+probe) round for one node
  kChurnWake,    ///< oracle mode: churn the node's owned links
  kTxnWake,      ///< oracle mode: run the node's ARQ transaction
};

struct Event {
  SlotTime time = 0;      ///< slot timestamp (round * span + phase offset)
  std::int32_t node = 0;  ///< owning logical process
  std::uint32_t seq = 0;  ///< per-LP sequence number (== round index)
  EventKind kind = EventKind::kNodeRound;
};

/// `(time, node, seq)` lexicographic order; `a < b` means a fires first.
inline bool event_before(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.node != b.node) return a.node < b.node;
  return a.seq < b.seq;
}

/// Binary min-heap of `Event`s ordered by `event_before`.
class EventQueue {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }
  void clear() noexcept { heap_.clear(); }

  /// The earliest pending event; the queue must not be empty.
  const Event& top() const {
    MRLC_REQUIRE(!heap_.empty(), "top() on an empty event queue");
    return heap_.front();
  }

  void push(const Event& event);

  /// Removes and returns the earliest pending event.
  Event pop();

 private:
  std::vector<Event> heap_;
};

}  // namespace mrlc::dist
