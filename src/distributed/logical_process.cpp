#include "distributed/logical_process.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist::engine {

SlotTime slots_per_round(const radio::ArqPolicy& policy) {
  SlotTime span = 2;  // phase offsets: churn fires at +0, transactions at +1
  span += static_cast<SlotTime>(policy.max_attempts);
  for (int failures = 1; failures < policy.max_attempts; ++failures) {
    span += policy.backoff_slots(failures);
  }
  return span;
}

namespace {

/// The k-th stream forked from the master seed.  Streams 1..4 are, in
/// order: the churn base, the channel-initialization stream, the probe
/// base, and the node base.  `fork` mutates the parent, so the k-th
/// stream is only reachable by replaying the forks before it.
Rng nth_fork(std::uint64_t seed, int k) {
  Rng master(seed);
  Rng out = master.fork(1);
  for (int i = 2; i <= k; ++i) out = master.fork(static_cast<std::uint64_t>(i));
  return out;
}

}  // namespace

SimState::SimState(wsn::Network net_in, wsn::AggregationTree tree,
                   double lifetime_bound_in, const DataPlaneOptions& options_in,
                   int shard_count_in)
    : options(&options_in),
      lifetime_bound(lifetime_bound_in),
      n(net_in.node_count()),
      links(net_in.link_count()),
      shard_count(std::max(1, shard_count_in)),
      window_rounds(options_in.repair == RepairMode::kNone
                        ? std::min(options_in.window_rounds, options_in.rounds)
                        : 1),
      round_span(slots_per_round(options_in.arq)),
      tx_joules(net_in.energy_model().tx_joules),
      rx_joules(net_in.energy_model().rx_joules),
      net(std::move(net_in)),
      believed(net),
      churn(net, options_in.churn),
      channel_init_rng_(nth_fork(options_in.seed, 2)),
      channels(net, options_in.channel, channel_init_rng_),
      estimator(net, options_in.estimator),
      maintainer(believed, std::move(tree), lifetime_bound_in,
                 options_in.maintainer) {
  // Per-entity streams, forked serially in a fixed order so the plan is
  // identical for every engine and thread count.
  Rng churn_base = nth_fork(options->seed, 1);
  churn_rng.reserve(static_cast<std::size_t>(links));
  for (wsn::EdgeId e = 0; e < links; ++e) {
    churn_rng.push_back(churn_base.fork(static_cast<std::uint64_t>(e)));
  }
  if (probing()) {
    Rng probe_base = nth_fork(options->seed, 3);
    probe_rng.reserve(static_cast<std::size_t>(links));
    for (wsn::EdgeId e = 0; e < links; ++e) {
      probe_rng.push_back(probe_base.fork(static_cast<std::uint64_t>(e)));
    }
  }
  Rng node_base = nth_fork(options->seed, 4);
  node_rng.reserve(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    node_rng.push_back(node_base.fork(static_cast<std::uint64_t>(v)));
  }

  txn.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(window_rounds),
             TxnOutcome{});
  fired_churn.resize(static_cast<std::size_t>(shard_count));
  fired_est.resize(static_cast<std::size_t>(shard_count));
  reach.assign(static_cast<std::size_t>(n), 0);
  tallies.assign(static_cast<std::size_t>(chunk_count()), Tally{});
  consumed.assign(static_cast<std::size_t>(n), 0.0);
  pending_degrade.assign(static_cast<std::size_t>(links), -1);
  pending_improve.assign(static_cast<std::size_t>(links), -1);
  rebuild_tree_caches();
}

int SimState::chunk_count() const {
  return std::clamp(n / 4096, 1, 256);
}

int SimState::plan_window() {
  const int want = std::min(window_rounds, options->rounds - completed_rounds);
  int planned = 0;
  while (planned < want) {
    if (options->budget != nullptr && !options->budget->charge(1)) {
      stopped = true;
      break;
    }
    ++planned;
  }
  return planned;
}

void SimState::rebuild_tree_caches() {
  const wsn::AggregationTree& tree = maintainer.tree();
  const wsn::VertexId root = tree.root();
  parents.assign(static_cast<std::size_t>(n), -1);
  parent_edges.assign(static_cast<std::size_t>(n), -1);
  on_tree.assign(static_cast<std::size_t>(links), 0);
  std::vector<wsn::VertexId> owner(static_cast<std::size_t>(links), 0);
  for (wsn::VertexId v = 0; v < n; ++v) {
    if (v == root || !tree.contains(v)) continue;
    const wsn::EdgeId e = tree.parent_edge(v);
    parents[static_cast<std::size_t>(v)] = tree.parent(v);
    parent_edges[static_cast<std::size_t>(v)] = e;
    on_tree[static_cast<std::size_t>(e)] = 1;
    owner[static_cast<std::size_t>(e)] = v;  // the child endpoint owns it
  }
  for (wsn::EdgeId e = 0; e < links; ++e) {
    if (on_tree[static_cast<std::size_t>(e)]) continue;
    const auto& edge = net.topology().edge(e);
    owner[static_cast<std::size_t>(e)] = std::min(edge.u, edge.v);
  }

  // Children CSR, filled in ascending child order.
  child_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (wsn::VertexId v = 0; v < n; ++v) {
    const wsn::VertexId p = parents[static_cast<std::size_t>(v)];
    if (p >= 0) ++child_offsets[static_cast<std::size_t>(p) + 1];
  }
  for (int i = 0; i < n; ++i) child_offsets[i + 1] += child_offsets[i];
  child_list.assign(static_cast<std::size_t>(child_offsets[n]), 0);
  {
    std::vector<int> cursor(child_offsets.begin(), child_offsets.end() - 1);
    for (wsn::VertexId v = 0; v < n; ++v) {
      const wsn::VertexId p = parents[static_cast<std::size_t>(v)];
      if (p >= 0) child_list[static_cast<std::size_t>(cursor[p]++)] = v;
    }
  }

  // Members in BFS order (parents before children, children ascending).
  bfs_order.clear();
  bfs_order.reserve(static_cast<std::size_t>(tree.member_count()));
  bfs_order.push_back(root);
  for (std::size_t i = 0; i < bfs_order.size(); ++i) {
    const wsn::VertexId v = bfs_order[i];
    for (int j = child_offsets[v]; j < child_offsets[v + 1]; ++j) {
      bfs_order.push_back(child_list[static_cast<std::size_t>(j)]);
    }
  }

  // Link-ownership CSR, ascending link ids per owner.
  owned_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (wsn::EdgeId e = 0; e < links; ++e) {
    ++owned_offsets[static_cast<std::size_t>(owner[static_cast<std::size_t>(e)]) + 1];
  }
  for (int i = 0; i < n; ++i) owned_offsets[i + 1] += owned_offsets[i];
  owned_links.assign(static_cast<std::size_t>(links), 0);
  {
    std::vector<int> cursor(owned_offsets.begin(), owned_offsets.end() - 1);
    for (wsn::EdgeId e = 0; e < links; ++e) {
      owned_links[static_cast<std::size_t>(
          cursor[owner[static_cast<std::size_t>(e)]]++)] = e;
    }
  }
}

void SimState::churn_link(wsn::EdgeId e, std::vector<LinkEvent>* fired) {
  auto event =
      churn.step_link(net, e, churn_rng[static_cast<std::size_t>(e)]);
  // Re-anchor the channel immediately: sub-threshold drift changes the
  // loss process even when no event fires (the legacy loop's full
  // `ChannelSet::sync` did the same link-by-link, and sync draws no RNG).
  channels.sync_link(e, net.link_prr(e));
  if (fired != nullptr && event.has_value()) fired->push_back(*event);
}

void SimState::transact_node(wsn::VertexId v, int k,
                             std::vector<LinkEvent>* fired) {
  TxnOutcome& slot_ref = slot(v, k);
  const wsn::EdgeId link = parent_edges[static_cast<std::size_t>(v)];
  if (link < 0) {
    slot_ref = TxnOutcome{};  // root / non-member: fully rewritten, no stale state
    return;
  }
  const double q_ack = options->arq.ack_prr(net.link_prr(link));
  const radio::ArqTransactionResult res = radio::simulate_arq_transaction(
      options->arq, q_ack, channels, link, tx_joules, rx_joules,
      node_rng[static_cast<std::size_t>(v)]);
  slot_ref.sender_joules = res.sender_joules;
  slot_ref.receiver_joules = res.receiver_joules;
  slot_ref.data_tx = res.data_transmissions;
  slot_ref.ack_tx = res.ack_transmissions;
  slot_ref.duplicates = res.duplicates_suppressed;
  slot_ref.ack_losses = res.ack_losses;
  slot_ref.slots = static_cast<std::uint32_t>(res.slots_elapsed);
  slot_ref.attempts = static_cast<std::uint16_t>(res.attempts);
  slot_ref.participated = true;
  slot_ref.data_held = res.data_held;
  slot_ref.acked = res.acked;
  // Sharded histogram: integer sums, so recording from parallel workers
  // is exact and order-independent.
  static metrics::Histogram& attempts_hist =
      metrics::histogram("arq.attempts_per_transaction");
  attempts_hist.record(res.attempts);
  if (estimator_mode()) {
    if (auto event = estimator.observe_detached(link, res.acked);
        event.has_value() && fired != nullptr) {
      fired->push_back(*event);
    }
  }
}

void SimState::probe_link(wsn::EdgeId e, std::vector<LinkEvent>* fired) {
  Rng& rng = probe_rng[static_cast<std::size_t>(e)];
  if (!rng.bernoulli(options->probe_probability)) return;
  const bool outcome = channels.transmit(e, rng);
  if (auto event = estimator.observe_detached(e, outcome);
      event.has_value() && fired != nullptr) {
    fired->push_back(*event);
  }
}

std::vector<LinkEvent> SimState::drain_sorted(
    std::vector<std::vector<LinkEvent>>& fired) {
  std::size_t total = 0;
  for (const auto& shard : fired) total += shard.size();
  std::vector<LinkEvent> all;
  all.reserve(total);
  for (auto& shard : fired) {
    all.insert(all.end(), shard.begin(), shard.end());
    shard.clear();
  }
  // At most one event per link per round, so link id is a total order:
  // the merged sequence is independent of sharding and thread count.
  std::sort(all.begin(), all.end(),
            [](const LinkEvent& a, const LinkEvent& b) { return a.link < b.link; });
  return all;
}

void SimState::apply_oracle_events() {
  for (const LinkEvent& event : drain_sorted(fired_churn)) {
    const bool changed = event.kind == LinkEvent::Kind::kDegraded
                             ? maintainer.on_link_degraded(net, event.link)
                             : maintainer.on_link_improved(net, event.link);
    (event.kind == LinkEvent::Kind::kDegraded ? out.degraded_events
                                              : out.improved_events)++;
    if (changed) {
      ++out.repairs_applied;
      tree_dirty = true;
    }
  }
  if (tree_dirty) {
    rebuild_tree_caches();
    tree_dirty = false;
  }
}

void SimState::apply_pending_marks(int round) {
  for (const LinkEvent& event : drain_sorted(fired_churn)) {
    std::vector<int>& pending = event.kind == LinkEvent::Kind::kDegraded
                                    ? pending_degrade
                                    : pending_improve;
    if (pending[static_cast<std::size_t>(event.link)] < 0) {
      pending[static_cast<std::size_t>(event.link)] = round;
    }
  }
}

void SimState::apply_estimator_events(int round) {
  for (const LinkEvent& event : drain_sorted(fired_est)) {
    believed.set_link_prr(event.link, event.new_prr);
    const bool changed = event.kind == LinkEvent::Kind::kDegraded
                             ? maintainer.on_link_degraded(believed, event.link)
                             : maintainer.on_link_improved(believed, event.link);
    (event.kind == LinkEvent::Kind::kDegraded ? out.degraded_events
                                              : out.improved_events)++;
    if (changed) {
      ++out.repairs_applied;
      tree_dirty = true;
    }

    std::vector<int>& pending = event.kind == LinkEvent::Kind::kDegraded
                                    ? pending_degrade
                                    : pending_improve;
    int& since = pending[static_cast<std::size_t>(event.link)];
    if (since >= 0) {
      ++out.detections;
      static metrics::Histogram& lag_hist =
          metrics::histogram("dataplane.detection_lag_rounds");
      lag_hist.record(round - since);
      lag_sum += static_cast<double>(round - since);
      since = -1;
    } else {
      ++out.false_positive_events;
    }
  }
  if (tree_dirty) {
    rebuild_tree_caches();
    tree_dirty = false;
  }
}

void SimState::commit_window(int planned) {
  // Readings: a node's reading reaches the root iff every tree edge on
  // its path held the round's aggregate — computed top-down over the BFS
  // order, which equals the bottom-up readings aggregation of
  // `simulate_arq_round` (children transact before their parent there,
  // so a delivered subtree contributes exactly its reachable nodes).
  const wsn::VertexId root = maintainer.tree().root();
  for (int k = 0; k < planned; ++k) {
    reach[static_cast<std::size_t>(root)] = 1;
    int delivered = 1;
    for (std::size_t i = 1; i < bfs_order.size(); ++i) {
      const wsn::VertexId v = bfs_order[i];
      const char ok =
          reach[static_cast<std::size_t>(parents[static_cast<std::size_t>(v)])] &&
          slot(v, k).data_held;
      reach[static_cast<std::size_t>(v)] = ok;
      delivered += ok;
    }
    delivered_total += static_cast<std::uint64_t>(delivered - 1);
    if (delivered == n) ++complete_rounds;
  }

  // Energy + work tallies.  Each `consumed[p]` slot is written by exactly
  // one chunk, and its terms arrive in a fixed per-slot order (rounds
  // ascending; self before children, children ascending) — so the merge
  // is bit-identical whether the chunks run serially or on the pool.
  const int chunks = chunk_count();
  auto body = [&](int c) {
    const wsn::VertexId lo = static_cast<wsn::VertexId>(
        static_cast<long long>(n) * c / chunks);
    const wsn::VertexId hi = static_cast<wsn::VertexId>(
        static_cast<long long>(n) * (c + 1) / chunks);
    Tally t;
    for (wsn::VertexId p = lo; p < hi; ++p) {
      for (int k = 0; k < planned; ++k) {
        const TxnOutcome& self = slot(p, k);
        if (self.participated) {
          consumed[static_cast<std::size_t>(p)] += self.sender_joules;
          ++t.transactions;
          t.data_tx += self.data_tx;
          t.ack_tx += self.ack_tx;
          t.ack_losses += self.ack_losses;
          t.duplicates += self.duplicates;
          t.slots += self.slots;
          if (!self.data_held) ++t.dropped;
        }
        for (int j = child_offsets[p]; j < child_offsets[p + 1]; ++j) {
          const TxnOutcome& child = slot(child_list[static_cast<std::size_t>(j)], k);
          if (child.participated) {
            consumed[static_cast<std::size_t>(p)] += child.receiver_joules;
          }
        }
      }
    }
    tallies[static_cast<std::size_t>(c)] = t;
  };
  if (parallel_commit) {
    default_pool().for_each(chunks, body);
  } else {
    for (int c = 0; c < chunks; ++c) body(c);
  }

  Tally sum;
  for (int c = 0; c < chunks; ++c) {
    const Tally& t = tallies[static_cast<std::size_t>(c)];
    sum.transactions += t.transactions;
    sum.data_tx += t.data_tx;
    sum.ack_tx += t.ack_tx;
    sum.ack_losses += t.ack_losses;
    sum.duplicates += t.duplicates;
    sum.dropped += t.dropped;
    sum.slots += t.slots;
  }
  transactions_total += sum.transactions;
  data_tx_total += static_cast<std::uint64_t>(sum.data_tx);
  ack_tx_total += static_cast<std::uint64_t>(sum.ack_tx);
  slots_total += sum.slots;
  out.duplicates_suppressed += sum.duplicates;
  out.packets_dropped += sum.dropped;

  // The same arq.* totals the per-round `simulate_arq_round` would bump.
  static metrics::Counter& rounds = metrics::counter("arq.rounds");
  static metrics::Counter& transactions = metrics::counter("arq.transactions");
  static metrics::Counter& data_tx = metrics::counter("arq.data_tx");
  static metrics::Counter& retx = metrics::counter("arq.retransmissions");
  static metrics::Counter& ack_tx = metrics::counter("arq.ack_tx");
  static metrics::Counter& ack_losses = metrics::counter("arq.ack_losses");
  static metrics::Counter& duplicates =
      metrics::counter("arq.duplicates_suppressed");
  static metrics::Counter& dropped = metrics::counter("arq.packets_dropped");
  rounds.add(planned);
  transactions.add(sum.transactions);
  data_tx.add(sum.data_tx);
  retx.add(sum.data_tx - sum.transactions);
  ack_tx.add(sum.ack_tx);
  ack_losses.add(sum.ack_losses);
  duplicates.add(sum.duplicates);
  dropped.add(sum.dropped);
}

void SimState::end_window(int planned) {
  completed_rounds += planned;
  window_start = completed_rounds;
  ++windows_committed;
  if (options->metrics_flush_every > 0 &&
      !options->metrics_flush_path.empty() &&
      windows_committed % options->metrics_flush_every == 0) {
    static metrics::Counter& flushes =
        metrics::counter("dataplane.metrics_flushes");
    flushes.add();
    std::ofstream os(options->metrics_flush_path);
    if (os) metrics::write_json(os);
  }
}

void SimState::finalize() {
  out.rounds = completed_rounds;
  // Normalize per-round statistics by the rounds actually simulated (the
  // max guards the all-budget-spent-up-front case against dividing by 0).
  const auto denom = static_cast<double>(std::max(1, completed_rounds));
  out.delivery_ratio =
      n > 1 ? static_cast<double>(delivered_total) /
                  (denom * static_cast<double>(n - 1))
            : 1.0;
  out.round_success_ratio = static_cast<double>(complete_rounds) / denom;
  out.avg_data_tx_per_round = static_cast<double>(data_tx_total) / denom;
  out.avg_ack_tx_per_round = static_cast<double>(ack_tx_total) / denom;
  out.avg_slots_per_round = static_cast<double>(slots_total) / denom;

  double joules_total = 0.0;
  out.measured_lifetime_rounds = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double joules = consumed[static_cast<std::size_t>(v)];
    joules_total += joules;
    const double rate = joules / denom;
    if (rate <= 0.0) continue;
    out.measured_lifetime_rounds =
        std::min(out.measured_lifetime_rounds, net.initial_energy(v) / rate);
  }
  out.joules_per_reading = delivered_total > 0
                               ? joules_total / static_cast<double>(delivered_total)
                               : std::numeric_limits<double>::infinity();

  if (options->repair == RepairMode::kEstimator) {
    out.mean_detection_lag_rounds =
        out.detections > 0 ? lag_sum / static_cast<double>(out.detections)
                           : std::numeric_limits<double>::quiet_NaN();
    for (int round_mark : pending_degrade) {
      if (round_mark >= 0) ++out.missed_events;
    }
    for (int round_mark : pending_improve) {
      if (round_mark >= 0) ++out.missed_events;
    }
    double mae = 0.0;
    for (wsn::EdgeId id = 0; id < links; ++id) {
      mae += std::abs(estimator.estimate(id) - net.link_prr(id));
    }
    out.estimate_mae = links > 0 ? mae / static_cast<double>(links) : 0.0;
  }

  out.final_reliability = wsn::tree_reliability(net, maintainer.tree());
  out.final_lifetime = wsn::network_lifetime(net, maintainer.tree());
  out.bound_met =
      wsn::meets_lifetime(net, maintainer.tree(), maintainer.lifetime_bound());

  static metrics::Counter& rounds_total = metrics::counter("dataplane.rounds");
  static metrics::Counter& degraded = metrics::counter("dataplane.degraded_events");
  static metrics::Counter& improved = metrics::counter("dataplane.improved_events");
  static metrics::Counter& repairs = metrics::counter("dataplane.repairs_applied");
  static metrics::Counter& detections = metrics::counter("dataplane.detections");
  static metrics::Counter& false_positives =
      metrics::counter("dataplane.false_positives");
  rounds_total.add(out.rounds);
  degraded.add(out.degraded_events);
  improved.add(out.improved_events);
  repairs.add(out.repairs_applied);
  detections.add(out.detections);
  false_positives.add(out.false_positive_events);
}

void LogicalProcess::churn_owned(SimState& s, std::vector<LinkEvent>* fired) {
  for (int j = s.owned_offsets[node_]; j < s.owned_offsets[node_ + 1]; ++j) {
    s.churn_link(s.owned_links[static_cast<std::size_t>(j)], fired);
  }
}

void LogicalProcess::probe_owned(SimState& s, std::vector<LinkEvent>* fired) {
  for (int j = s.owned_offsets[node_]; j < s.owned_offsets[node_ + 1]; ++j) {
    const wsn::EdgeId e = s.owned_links[static_cast<std::size_t>(j)];
    if (s.on_tree[static_cast<std::size_t>(e)]) continue;
    if (!s.net.topology().is_alive(e)) continue;
    s.probe_link(e, fired);
  }
}

void LogicalProcess::handle(const Event& event, SimState& s,
                            std::vector<LinkEvent>* fired_churn,
                            std::vector<LinkEvent>* fired_est) {
  const int k = static_cast<int>(event.seq) - s.window_start;
  switch (event.kind) {
    case EventKind::kNodeRound:
      // Program order within the process mirrors the legacy round: churn
      // the owned links (the node's parent edge among them), then
      // transact over the freshly re-anchored channel, then probe.
      churn_owned(s, s.estimator_mode() ? fired_churn : nullptr);
      s.transact_node(node_, k, fired_est);
      if (s.probing()) probe_owned(s, fired_est);
      break;
    case EventKind::kChurnWake:
      churn_owned(s, fired_churn);
      break;
    case EventKind::kTxnWake:
      s.transact_node(node_, k, nullptr);
      break;
  }
}

}  // namespace mrlc::dist::engine
