#pragma once

/// \file simulator.hpp
/// \brief Message-level simulation of the Section-VI protocol.
///
/// `DistributedMaintainer` computes the protocol's *decisions* (which
/// parent changes happen); this module simulates their *dissemination*:
/// every sensor keeps an actual replica of the tree, updates are flooded
/// hop by hop over the tree as radio broadcasts, and the simulator counts
/// real transmissions and verifies that all replicas converge to identical
/// state after every event — the property the paper's protocol depends on
/// ("as every node has the same information, 4 only needs to broadcast a
/// Parent-Changing information").
///
/// Radio model for a flood: transmitting once reaches all tree neighbours
/// (broadcast medium).  The initiator transmits its update record; every
/// node that has tree neighbours other than the one it heard the record
/// from forwards it once.  Leaves only listen.  Flood transmissions are
/// therefore |{initiator}| + |{nodes with tree degree >= 2 on the
/// propagation paths}|, which for an n=16 tree is the "< 10 messages per
/// update" of Fig. 13.
///
/// With `FloodOptions::lossy` set, each hop of the flood instead succeeds
/// per-neighbour with the link's PRR (a Bernoulli draw); senders re-broadcast
/// up to `control_retx` extra times while some neighbour has not heard the
/// record.  Replicas then detect sequence gaps and recover through an
/// anti-entropy protocol: periodic digest beacons advertise the highest
/// applied sequence, and a replica that learns it is behind pulls the
/// missing records from its best-informed tree neighbour.

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "distributed/maintainer.hpp"
#include "prufer/codec.hpp"
#include "radio/channel.hpp"

namespace mrlc::dist {

/// One disseminated update: the parent changes an event produced.
/// A parent of -1 detaches the child (node death or unhealed partition).
/// (An ILU chain within one event is batched into a single record by the
/// initiating region; the per-step message accounting of the paper is
/// available separately from DistributedMaintainer::stats.)
struct UpdateRecord {
  std::uint64_t sequence = 0;  ///< replica-side dedup / ordering key
  wsn::VertexId initiator = -1;
  std::vector<std::pair<wsn::VertexId, wsn::VertexId>> changes;  ///< (child, parent)
};

/// A sensor's replicated state: its copy of the tree (parent array plus the
/// Prüfer code while the tree is a full spanning tree) and the record log.
///
/// Two application paths coexist:
/// * `apply()` — the legacy reliable-flood path: any record newer than the
///   cursor is applied immediately (floods never lose or reorder records,
///   so "newer" implies "next").
/// * `integrate()` — the lossy-flood path: records are applied strictly in
///   sequence order; a record that would leave a gap is buffered until the
///   missing predecessors arrive (via retransmission or anti-entropy).
class SensorReplica {
 public:
  SensorReplica(wsn::VertexId id, const prufer::Code& code, int node_count);

  wsn::VertexId id() const noexcept { return id_; }
  /// Prüfer code of the replica's tree; empty while the replicated parent
  /// array is partial (codes exist only for full spanning trees).
  const prufer::Code& code() const noexcept { return code_; }
  /// The replicated parent array (parent -1 = root or detached).
  const std::vector<wsn::VertexId>& parents() const noexcept { return parents_; }

  /// Applies a record exactly once (duplicates from multi-path floods are
  /// ignored).  Returns true if the record was new.
  bool apply(const UpdateRecord& record);

  /// Outcome of integrate(): applied now, buffered behind a gap, or an
  /// already-known duplicate.
  enum class Integration { kApplied, kBuffered, kDuplicate };

  /// Ordered application with gap detection.  Out-of-order records are
  /// buffered; a record that fills the gap also drains the buffer.
  Integration integrate(const UpdateRecord& record);

  /// Digest beacon input: a neighbour advertised `sequence` as applied.
  void observe_sequence(std::uint64_t sequence) noexcept {
    if (sequence > known_latest_) known_latest_ = sequence;
  }

  /// Highest sequence applied to the parent array (gap-free prefix end).
  std::uint64_t applied_sequence() const noexcept { return last_applied_; }
  /// Highest sequence this replica has heard of (applied, buffered, or
  /// advertised by a neighbour's digest).
  std::uint64_t known_sequence() const noexcept { return known_latest_; }
  /// Sequences known to exist but neither applied nor buffered — what an
  /// anti-entropy request asks a neighbour for.
  std::vector<std::uint64_t> missing_sequences() const;
  /// True if the record is held (applied or buffered) and can be served.
  bool has_record(std::uint64_t sequence) const;
  /// The held record for `sequence` (has_record must be true).
  const UpdateRecord& record(std::uint64_t sequence) const;

  void mark_dead() noexcept { dead_ = true; }
  bool dead() const noexcept { return dead_; }

 private:
  /// Applies the record's changes to parents_ and refreshes the code.
  void apply_changes(const UpdateRecord& record);

  wsn::VertexId id_;
  int node_count_;
  std::vector<wsn::VertexId> parents_;
  prufer::Code code_;
  std::uint64_t last_applied_ = 0;
  std::uint64_t known_latest_ = 0;
  bool dead_ = false;
  std::map<std::uint64_t, UpdateRecord> buffered_;  ///< future records (gap)
  std::map<std::uint64_t, UpdateRecord> log_;       ///< applied records
};

/// Knobs for the control-plane radio model.
struct FloodOptions {
  /// Per-hop Bernoulli(link PRR) reception draws instead of perfect floods.
  bool lossy = false;
  /// Extra broadcast attempts a flooding sender may spend while some tree
  /// neighbour has not heard the record (0 = single attempt).  Also bounds
  /// the retransmissions of each anti-entropy unicast.
  int control_retx = 2;
  /// Cap on anti-entropy rounds per resync() call; hitting it increments
  /// SimulatorStats::resync_exhausted.
  int max_resync_rounds = 256;
  /// Per-link loss process for lossy-mode draws: i.i.d. Bernoulli (the
  /// default) or a Gilbert–Elliott burst channel whose state persists
  /// across floods — a burst then knocks out *consecutive* control
  /// messages on a link, the hard case for anti-entropy.
  radio::ChannelConfig channel;
  /// Seed for the control-plane loss draws (data-plane randomness, e.g.
  /// ChurnProcess, is seeded separately).
  std::uint64_t seed = 0xC0DEC0DEULL;
};

struct SimulatorStats {
  long long flood_transmissions = 0;  ///< radio transmissions across all floods
  long long records_disseminated = 0;
  std::vector<int> transmissions_per_event;
  // Fault-tolerant control plane:
  long long flood_deliveries_missed = 0;  ///< member replicas a flood left stale
  long long digest_beacons = 0;           ///< anti-entropy digest broadcasts
  long long resync_requests = 0;          ///< record pulls incl. retransmissions
  long long resync_responses = 0;         ///< record batches served incl. retx
  long long resync_rounds = 0;
  int resync_exhausted = 0;  ///< resync() calls that hit max_resync_rounds

  /// Total control-plane messages (what bench/extra_fault_recovery reports).
  long long control_messages() const noexcept {
    return flood_transmissions + digest_beacons + resync_requests +
           resync_responses;
  }
};

/// Wraps a DistributedMaintainer with per-node replicas and message-level
/// dissemination.
class ProtocolSimulator {
 public:
  /// \param net  the network the tree was built on.
  /// \param initial  the construction-time tree whose Prüfer code seeds
  ///        every replica.
  /// \param lifetime_bound  the LC every repair must preserve.
  /// \param options  maintainer knobs (forwarded).
  /// \param flood  control-plane radio model (reliable or lossy).
  ProtocolSimulator(const wsn::Network& net, wsn::AggregationTree initial,
                    double lifetime_bound, MaintainerOptions options = {},
                    FloodOptions flood = {});

  /// Event entry points; identical semantics to DistributedMaintainer but
  /// every accepted change is flooded to the replicas (and, in lossy mode,
  /// followed by anti-entropy resync rounds).
  bool on_link_degraded(const wsn::Network& net, wsn::EdgeId link);
  bool on_link_improved(const wsn::Network& net, wsn::EdgeId link);

  /// Kills `dead` (calls `net.fail_node`, which is idempotent), runs the
  /// maintainer's repair, and floods the resulting parent changes from the
  /// dead node's former parent — the node that detects the silence.
  RepairOutcome on_node_failed(wsn::Network& net, wsn::VertexId dead);

  /// Retries subtrees detached by earlier partitions; returns the number of
  /// nodes that rejoined (their reattachment is flooded like any update).
  int retry_detached(const wsn::Network& net);

  /// Runs anti-entropy rounds until every live member replica has applied
  /// every record (or max_resync_rounds is hit).  No-op unless lossy mode
  /// is on.  Called automatically after each event; public so tests and
  /// benchmarks can drive extra rounds.  Returns rounds used.
  int resync(const wsn::Network& net);

  /// True iff every live *member* replica agrees with the maintainer's
  /// parent array.  Replicas of dead or partitioned nodes are excluded:
  /// they are unreachable by floods and go stale by design.
  bool replicas_consistent() const;

  const wsn::AggregationTree& tree() const noexcept { return maintainer_.tree(); }
  const DistributedMaintainer& maintainer() const noexcept { return maintainer_; }
  const SimulatorStats& stats() const noexcept { return stats_; }
  const FloodOptions& flood_options() const noexcept { return flood_; }
  const SensorReplica& replica(wsn::VertexId v) const;

 private:
  /// Diffs the maintainer's tree before/after an event into a record and
  /// floods it; returns the transmissions used.  `initiator_hint` names the
  /// flood source when the first changed node is not a valid one (e.g. the
  /// dead node itself); -1 = first changed node.
  int disseminate(const wsn::Network& net,
                  const std::vector<wsn::VertexId>& before,
                  const std::vector<wsn::VertexId>& after,
                  wsn::VertexId initiator_hint = -1);
  int flood(const wsn::Network& net, const UpdateRecord& record);
  int flood_reliable(const UpdateRecord& record);
  int flood_lossy(const wsn::Network& net, const UpdateRecord& record);
  /// Tree adjacency over current members: (neighbour, connecting edge).
  std::vector<std::vector<std::pair<wsn::VertexId, wsn::EdgeId>>>
  member_adjacency() const;

  DistributedMaintainer maintainer_;
  std::vector<SensorReplica> replicas_;
  SimulatorStats stats_;
  FloodOptions flood_;
  Rng rng_;
  /// Loss processes for lossy control traffic (declared after rng_: the
  /// constructor draws the initial burst states from it).
  radio::ChannelSet channels_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace mrlc::dist
