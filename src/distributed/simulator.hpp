#pragma once

/// \file simulator.hpp
/// \brief Message-level simulation of the Section-VI protocol.
///
/// `DistributedMaintainer` computes the protocol's *decisions* (which
/// parent changes happen); this module simulates their *dissemination*:
/// every sensor keeps an actual replica of the Prüfer code, updates are
/// flooded hop by hop over the tree as radio broadcasts, and the simulator
/// counts real transmissions and verifies that all replicas converge to
/// identical codes after every event — the property the paper's protocol
/// depends on ("as every node has the same information, 4 only needs to
/// broadcast a Parent-Changing information").
///
/// Radio model for a flood: transmitting once reaches all tree neighbours
/// (broadcast medium).  The initiator transmits its update record; every
/// node that has tree neighbours other than the one it heard the record
/// from forwards it once.  Leaves only listen.  Flood transmissions are
/// therefore |{initiator}| + |{nodes with tree degree >= 2 on the
/// propagation paths}|, which for an n=16 tree is the "< 10 messages per
/// update" of Fig. 13.

#include <cstdint>
#include <vector>

#include "distributed/maintainer.hpp"
#include "prufer/codec.hpp"

namespace mrlc::dist {

/// One disseminated update: the parent changes an event produced.
/// (An ILU chain within one event is batched into a single record by the
/// initiating region; the per-step message accounting of the paper is
/// available separately from DistributedMaintainer::stats.)
struct UpdateRecord {
  std::uint64_t sequence = 0;  ///< replica-side dedup key
  wsn::VertexId initiator = -1;
  std::vector<std::pair<wsn::VertexId, wsn::VertexId>> changes;  ///< (child, parent)
};

/// A sensor's replicated state: its copy of the code plus dedup cursor.
class SensorReplica {
 public:
  SensorReplica(wsn::VertexId id, prufer::Code code, int node_count)
      : id_(id), code_(std::move(code)), node_count_(node_count) {}

  wsn::VertexId id() const noexcept { return id_; }
  const prufer::Code& code() const noexcept { return code_; }

  /// Applies a record exactly once (duplicates from multi-path floods are
  /// ignored).  Returns true if the record was new.
  bool apply(const UpdateRecord& record);

 private:
  wsn::VertexId id_;
  prufer::Code code_;
  int node_count_;
  std::uint64_t last_applied_ = 0;
};

struct SimulatorStats {
  long long flood_transmissions = 0;  ///< radio transmissions across all floods
  long long records_disseminated = 0;
  std::vector<int> transmissions_per_event;
};

/// Wraps a DistributedMaintainer with per-node replicas and message-level
/// dissemination.
class ProtocolSimulator {
 public:
  ProtocolSimulator(const wsn::Network& net, wsn::AggregationTree initial,
                    double lifetime_bound, MaintainerOptions options = {});

  /// Event entry points; identical semantics to DistributedMaintainer but
  /// every accepted change is flooded to the replicas.
  bool on_link_degraded(const wsn::Network& net, wsn::EdgeId link);
  bool on_link_improved(const wsn::Network& net, wsn::EdgeId link);

  /// True iff every replica's code equals the maintainer's current code.
  bool replicas_consistent() const;

  const wsn::AggregationTree& tree() const noexcept { return maintainer_.tree(); }
  const DistributedMaintainer& maintainer() const noexcept { return maintainer_; }
  const SimulatorStats& stats() const noexcept { return stats_; }
  const SensorReplica& replica(wsn::VertexId v) const;

 private:
  /// Diffs the maintainer's tree before/after an event into a record and
  /// floods it; returns the transmissions used.
  int disseminate(const std::vector<wsn::VertexId>& before,
                  const std::vector<wsn::VertexId>& after);
  int flood(const UpdateRecord& record);

  DistributedMaintainer maintainer_;
  std::vector<SensorReplica> replicas_;
  SimulatorStats stats_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace mrlc::dist
