#pragma once

/// \file maintainer.hpp
/// \brief The distributed updating protocol (Section VI-B).
///
/// After IRA builds the initial aggregation tree, the sink broadcasts its
/// Prüfer code and every sensor keeps a replica.  Two kinds of events then
/// trigger local repairs:
///
/// * **Link getting worse** — the child below the degraded tree link looks
///   for the best replacement link that reconnects its component, subject
///   to the new parent still meeting the lifetime bound with one more
///   child.  (The paper's example always finds a replacement incident to
///   the child itself; when the best crossing link touches another node of
///   the component we re-root the component there — a strict generalization
///   that reduces to the paper's scheme whenever its candidate exists.)
/// * **Link getting better** — ILU (Algorithm 4): the improved link
///   displaces the costlier of the two parent links it could replace, and
///   the displaced link is recursively treated as a new "getting better"
///   event, chasing the improvement around the induced cycle.
///
/// Every accepted parent change is one broadcast flooded down the tree;
/// its message cost is the number of transmitting (non-leaf) nodes, which
/// is what Fig. 13 counts.
///
/// The class simulates the *global outcome* of the message exchange (all
/// replicas apply identical deterministic updates, so simulating one
/// replica plus the message counters is exact).

#include <vector>

#include "prufer/codec.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

struct MaintainerStats {
  int degradation_events = 0;
  int improvement_events = 0;
  int updates_applied = 0;          ///< accepted parent-change broadcasts
  long long total_messages = 0;
  std::vector<int> messages_per_event;  ///< one entry per *event* (possibly 0)
};

struct MaintainerOptions {
  /// Minimum cost improvement for ILU to keep chasing the cycle.
  double improvement_tolerance = 1e-12;
  /// Safety cap on ILU chain length per event.
  int max_chain_length = 256;
};

class DistributedMaintainer {
 public:
  /// \param lifetime_bound the LC every repair must preserve.
  DistributedMaintainer(const wsn::Network& net, wsn::AggregationTree initial,
                        double lifetime_bound, MaintainerOptions options = {});

  /// Handles a "tree link got worse" event.  `net` carries the updated link
  /// qualities.  Returns true if the tree changed.
  bool on_link_degraded(const wsn::Network& net, wsn::EdgeId link);

  /// Handles a "non-tree link got better" event (ILU).  Returns true if the
  /// tree changed.
  bool on_link_improved(const wsn::Network& net, wsn::EdgeId link);

  const wsn::AggregationTree& tree() const noexcept { return tree_; }
  const prufer::Code& code() const noexcept { return code_; }
  const MaintainerStats& stats() const noexcept { return stats_; }
  double lifetime_bound() const noexcept { return lifetime_bound_; }

 private:
  bool can_accept_child(const wsn::Network& net, wsn::VertexId v) const;
  /// Broadcast cost of one update on the current tree (transmitting nodes).
  int broadcast_cost() const;
  void refresh_code();

  wsn::AggregationTree tree_;
  prufer::Code code_;
  double lifetime_bound_;
  MaintainerOptions options_;
  MaintainerStats stats_;
};

}  // namespace mrlc::dist
