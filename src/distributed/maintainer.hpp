#pragma once

/// \file maintainer.hpp
/// \brief The distributed updating protocol (Section VI-B).
///
/// After IRA builds the initial aggregation tree, the sink broadcasts its
/// Prüfer code and every sensor keeps a replica.  Two kinds of events then
/// trigger local repairs:
///
/// * **Link getting worse** — the child below the degraded tree link looks
///   for the best replacement link that reconnects its component, subject
///   to the new parent still meeting the lifetime bound with one more
///   child.  (The paper's example always finds a replacement incident to
///   the child itself; when the best crossing link touches another node of
///   the component we re-root the component there — a strict generalization
///   that reduces to the paper's scheme whenever its candidate exists.)
/// * **Link getting better** — ILU (Algorithm 4): the improved link
///   displaces the costlier of the two parent links it could replace, and
///   the displaced link is recursively treated as a new "getting better"
///   event, chasing the improvement around the induced cycle.
///
/// Every accepted parent change is one broadcast flooded down the tree;
/// its message cost is the number of transmitting (non-leaf) nodes, which
/// is what Fig. 13 counts.
///
/// The class simulates the *global outcome* of the message exchange (all
/// replicas apply identical deterministic updates, so simulating one
/// replica plus the message counters is exact).

#include <vector>

#include "prufer/codec.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

struct MaintainerStats {
  int degradation_events = 0;
  int improvement_events = 0;
  int updates_applied = 0;          ///< accepted parent-change broadcasts
  long long total_messages = 0;
  std::vector<int> messages_per_event;  ///< one entry per *event* (possibly 0)
  // Fault handling:
  int node_failures = 0;      ///< on_node_failed calls
  int reattachments = 0;      ///< orphaned subtrees reattached
  int cascade_moves = 0;      ///< children relocated to free parent capacity
  int partitions = 0;         ///< subtrees left off-tree (no feasible repair)
  int lc_relaxations = 0;     ///< times the bound was lowered (opt-in policy)
};

struct MaintainerOptions {
  /// Minimum cost improvement for ILU to keep chasing the cycle.
  double improvement_tolerance = 1e-12;
  /// Safety cap on ILU chain length per event.
  int max_chain_length = 256;
  /// Opt-in graceful degradation: when a node failure leaves a subtree with
  /// no LC-feasible reattachment, lower the lifetime bound just enough to
  /// admit the best available parent instead of declaring a partition.  The
  /// relaxed bound is recorded in RepairOutcome::effective_bound.
  bool allow_lc_relaxation = false;
};

/// How a node-failure repair ended.
enum class RepairStatus {
  kHealed,          ///< every orphaned subtree reattached; LC intact
  kHealedDegraded,  ///< reattached, but only after relaxing LC (opt-in)
  kPartitioned,     ///< some subtree has no physical path back to the sink
                    ///< (or none meeting LC with relaxation disabled)
};

/// Result of DistributedMaintainer::on_node_failed / retry_detached.
struct RepairOutcome {
  RepairStatus status = RepairStatus::kHealed;
  /// The lifetime bound in force after the repair (== the construction-time
  /// LC unless a relaxation was applied, now or earlier).
  double effective_bound = 0.0;
  int reattached_subtrees = 0;
  int cascade_moves = 0;
  /// Nodes left off-tree by this event (empty unless kPartitioned).
  std::vector<wsn::VertexId> detached;
};

class DistributedMaintainer {
 public:
  /// \brief Starts maintaining `initial` on topology `net`.
  /// \param net  the network the tree was built on (validated here).
  /// \param initial  the construction-time tree (e.g. from IRA).
  /// \param lifetime_bound the LC every repair must preserve.
  /// \param options  ILU and fault-handling knobs.
  DistributedMaintainer(const wsn::Network& net, wsn::AggregationTree initial,
                        double lifetime_bound, MaintainerOptions options = {});

  /// \brief Handles a "tree link got worse" event.
  /// \param net  carries the updated link qualities.
  /// \param link  the degraded link's edge id (must be a tree link).
  /// \return true if the tree changed.
  bool on_link_degraded(const wsn::Network& net, wsn::EdgeId link);

  /// \brief Handles a "non-tree link got better" event (ILU).
  /// \param net  carries the updated link qualities.
  /// \param link  the improved link's edge id.
  /// \return true if the tree changed.
  bool on_link_improved(const wsn::Network& net, wsn::EdgeId link);

  /// \brief Handles a node death (crash or battery depletion).
  /// \param net  must already reflect the failure (`net.fail_node(dead)`
  ///        called), so the dead node's links are gone.
  /// \param dead  the failed vertex (must not be the sink).
  /// \return how the repair ended (healed / degraded / partitioned).
  ///
  /// Each subtree orphaned by the death is reattached to
  /// the cheapest surviving parent that still meets the lifetime bound with
  /// one more child, everting the subtree when the best crossing link is
  /// not incident to its root.  When a candidate parent is at capacity, one
  /// of its children may be relocated to make room (a cascade move).  When
  /// no LC-feasible reattachment exists the outcome is either a recorded
  /// partition or, under `MaintainerOptions::allow_lc_relaxation`, a
  /// minimal LC relaxation.
  RepairOutcome on_node_failed(const wsn::Network& net, wsn::VertexId dead);

  /// \brief Attempts to reattach subtrees left off-tree by earlier
  /// partitions (links may have recovered since).
  /// \param net  the current topology.
  /// \return the number of nodes that rejoined the tree.
  int retry_detached(const wsn::Network& net);

  const wsn::AggregationTree& tree() const noexcept { return tree_; }
  /// Prüfer code of the current tree; empty while the tree is partial
  /// (off-tree subtrees cannot be Prüfer-coded — replicas exchange parent
  /// records directly in that regime).
  const prufer::Code& code() const noexcept { return code_; }
  const MaintainerStats& stats() const noexcept { return stats_; }
  /// The construction-time LC, or the relaxed bound if degradation was
  /// allowed and used.
  double lifetime_bound() const noexcept { return lifetime_bound_; }

 private:
  bool can_accept_child(const wsn::Network& net, wsn::VertexId v) const;
  /// Broadcast cost of one update on the current tree (transmitting nodes).
  int broadcast_cost() const;
  void refresh_code();

  /// Shared reattachment engine for on_node_failed / retry_detached: tries
  /// to hang each parent-array subtree rooted in `roots` back onto the
  /// sink component of `parents`.  Mutates `parents`, appends unplaced
  /// roots to `failed_roots`.
  struct ReattachReport {
    int reattached = 0;
    int cascade_moves = 0;
    bool relaxed = false;
  };
  ReattachReport reattach_subtrees(const wsn::Network& net,
                                   std::vector<wsn::VertexId>& parents,
                                   std::vector<wsn::VertexId> roots,
                                   std::vector<wsn::VertexId>& failed_roots);

  wsn::AggregationTree tree_;
  prufer::Code code_;
  double lifetime_bound_;
  MaintainerOptions options_;
  MaintainerStats stats_;
};

}  // namespace mrlc::dist
