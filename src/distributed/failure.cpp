#include "distributed/failure.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "radio/depletion_sim.hpp"

namespace mrlc::dist {

FailureSchedule random_crash_schedule(const wsn::Network& net, int count,
                                      double horizon, Rng& rng) {
  MRLC_REQUIRE(count >= 0, "crash count must be non-negative");
  MRLC_REQUIRE(count <= net.node_count() - 1,
               "cannot crash more nodes than the network has (sink excluded)");
  MRLC_REQUIRE(horizon > 0.0, "horizon must be positive");

  // Partial Fisher-Yates over the non-sink nodes picks distinct victims.
  std::vector<wsn::VertexId> pool;
  pool.reserve(static_cast<std::size_t>(net.node_count() - 1));
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    if (v != net.sink()) pool.push_back(v);
  }
  FailureSchedule schedule;
  schedule.events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    FailureEvent event;
    event.time = rng.uniform(0.0, horizon);
    event.node = pool[static_cast<std::size_t>(i)];
    event.kind = FailureKind::kCrash;
    schedule.events.push_back(event);
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });
  return schedule;
}

FailureSchedule depletion_schedule(const wsn::Network& net,
                                   const wsn::AggregationTree& tree,
                                   const radio::RetxPolicy& policy, int deaths,
                                   int sample_rounds, Rng& rng) {
  MRLC_REQUIRE(deaths >= 0, "death count must be non-negative");
  MRLC_REQUIRE(deaths <= net.node_count() - 1,
               "cannot deplete more nodes than the network has (sink excluded)");

  const radio::DepletionResult depletion =
      radio::simulate_depletion(net, tree, policy, sample_rounds, rng);

  FailureSchedule schedule;
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    if (v == net.sink()) continue;  // the sink is mains-powered by convention
    const double rate = depletion.joules_per_round[static_cast<std::size_t>(v)];
    if (rate <= 0.0) continue;  // idle leaf of a detached subtree: never dies
    FailureEvent event;
    event.time = net.initial_energy(v) / rate;
    event.node = v;
    event.kind = FailureKind::kDepletion;
    schedule.events.push_back(event);
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });
  if (static_cast<int>(schedule.events.size()) > deaths) {
    schedule.events.resize(static_cast<std::size_t>(deaths));
  }
  return schedule;
}

CompactNetwork compact_alive_network(const wsn::Network& net) {
  const int n = net.node_count();
  std::vector<wsn::VertexId> compact_of(static_cast<std::size_t>(n), -1);
  CompactNetwork out{wsn::Network(std::max(net.alive_node_count(), 1),
                                  /*sink=*/0, net.energy_model()),
                     {}};
  // The sink maps to compact id 0 so downstream solvers keep their default.
  out.original.reserve(static_cast<std::size_t>(net.alive_node_count()));
  out.original.push_back(net.sink());
  compact_of[static_cast<std::size_t>(net.sink())] = 0;
  for (wsn::VertexId v = 0; v < n; ++v) {
    if (v == net.sink() || !net.node_alive(v)) continue;
    compact_of[static_cast<std::size_t>(v)] =
        static_cast<wsn::VertexId>(out.original.size());
    out.original.push_back(v);
  }
  for (std::size_t c = 0; c < out.original.size(); ++c) {
    out.net.set_initial_energy(static_cast<wsn::VertexId>(c),
                               net.initial_energy(out.original[c]));
  }
  for (wsn::EdgeId id : net.topology().alive_edge_ids()) {
    const graph::Edge& e = net.topology().edge(id);
    out.net.add_link(compact_of[static_cast<std::size_t>(e.u)],
                     compact_of[static_cast<std::size_t>(e.v)], net.link_prr(id));
  }
  return out;
}

void write_fault_schedule(std::ostream& out, const FailureSchedule& schedule) {
  out << "fault-schedule v1 " << schedule.size() << "\n";
  for (const FailureEvent& event : schedule.events) {
    out << "fault " << event.time << ' ' << event.node << ' '
        << (event.kind == FailureKind::kCrash ? "crash" : "depletion") << "\n";
  }
}

FailureSchedule read_fault_schedule(std::istream& in) {
  FailureSchedule schedule;
  std::string line;
  int declared = -1;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;
    if (declared < 0) {
      if (keyword != "fault-schedule") continue;  // skip the network block
      std::string version;
      MRLC_REQUIRE(fields >> version && version == "v1",
                   "unsupported fault-schedule version");
      MRLC_REQUIRE(fields >> declared && declared >= 0,
                   "fault-schedule needs an event count");
      continue;
    }
    MRLC_REQUIRE(keyword == "fault", "expected a fault line");
    FailureEvent event;
    std::string kind;
    MRLC_REQUIRE(fields >> event.time >> event.node >> kind,
                 "malformed fault line");
    MRLC_REQUIRE(kind == "crash" || kind == "depletion", "unknown fault kind");
    event.kind = kind == "crash" ? FailureKind::kCrash : FailureKind::kDepletion;
    schedule.events.push_back(event);
    if (schedule.size() == declared) break;
  }
  MRLC_REQUIRE(declared < 0 || schedule.size() == declared,
               "fault-schedule ended before the declared event count");
  return schedule;
}

}  // namespace mrlc::dist
