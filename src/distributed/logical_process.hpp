#pragma once

/// \file logical_process.hpp
/// \brief Per-node logical processes and the shared simulation state of
/// the data-plane engines.
///
/// The discrete-event refactor splits `run_dataplane` into three layers:
///
/// * `SimState` — everything both engines share: the true and believed
///   networks, churn/channel/estimator/maintainer objects, per-entity
///   forked RNG streams, cached tree structure (parents, children CSR,
///   BFS order, the on-tree mask, link ownership), the per-window
///   transaction outcome slots, and the result accumulators.  All
///   *merge* work (readings, energy, counters, repair events) lives here
///   as serial-checkpoint methods so the legacy round loop and the DES
///   engine execute byte-identical commit code.
/// * `LogicalProcess` — one per node.  Owns the node's ARQ transaction,
///   the churn + channel re-derivation of its *owned* links (on-tree
///   link -> owned by the child endpoint; off-tree link -> owned by
///   min(u, v)), and in estimator mode the probe beacons of its owned
///   idle links.  Every random draw comes from a stream forked per
///   entity (node or link), so results do not depend on which worker
///   runs which process.
/// * the drivers — `des_engine.hpp` (parallel, event-queue scheduled)
///   and the legacy serial loop in `dataplane.cpp`.
///
/// Determinism argument (see docs/algorithms.md §18): each link and each
/// node is touched by exactly one logical process per round, every draw
/// comes from that entity's own stream, integer counters are summed (an
/// abelian reduction), floating-point accumulators receive their terms
/// in a fixed per-memory-location order, and cross-entity decisions
/// (repairs) are applied at serial checkpoints in link-id order.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "distributed/dataplane.hpp"
#include "distributed/event_queue.hpp"

namespace mrlc::dist::engine {

/// Outcome slot of one (node, round-in-window) ARQ transaction, written
/// by exactly one logical process and read at the window's serial
/// checkpoint.  `participated` is false for the root and non-members —
/// the slot is fully rewritten every round, so no cross-round state
/// leaks through it.
struct TxnOutcome {
  double sender_joules = 0.0;
  double receiver_joules = 0.0;
  std::uint32_t data_tx = 0;
  std::uint32_t ack_tx = 0;
  std::uint32_t duplicates = 0;
  std::uint32_t ack_losses = 0;
  std::uint32_t slots = 0;
  std::uint16_t attempts = 0;
  bool participated = false;
  bool data_held = false;
  bool acked = false;
};

/// Integer work sums of one commit chunk (exact, order-independent).
struct Tally {
  long long transactions = 0;
  long long data_tx = 0;
  long long ack_tx = 0;
  long long ack_losses = 0;
  long long duplicates = 0;
  long long dropped = 0;
  unsigned long long slots = 0;
};

/// Shared state of both data-plane engines.  Public-by-design: the
/// engines are the only consumers and live in this module.
struct SimState {
  SimState(wsn::Network net_in, wsn::AggregationTree tree,
           double lifetime_bound_in, const DataPlaneOptions& options_in,
           int shard_count_in);

  // --- immutable configuration -------------------------------------
  const DataPlaneOptions* options;
  double lifetime_bound = 0.0;
  int n = 0;
  int links = 0;
  int shard_count = 1;     ///< fired-event list granularity (DES shards)
  int window_rounds = 1;   ///< effective window width (1 in repair modes)
  SlotTime round_span = 1; ///< virtual-time slots reserved per round
  double tx_joules = 0.0;
  double rx_joules = 0.0;
  bool parallel_commit = false;  ///< DES runs the commit map on the pool

  // --- simulation objects ------------------------------------------
  wsn::Network net;       ///< ground truth; churn mutates it
  wsn::Network believed;  ///< what the nodes believe (estimator updates)
  ChurnProcess churn;
  Rng channel_init_rng_;  ///< master stream 2, consumed by `channels` below
  radio::ChannelSet channels;
  LinkEstimatorBank estimator;
  DistributedMaintainer maintainer;

  // --- per-entity RNG streams (forked serially at construction) ----
  std::vector<Rng> churn_rng;  ///< one per link
  std::vector<Rng> probe_rng;  ///< one per link (estimator mode w/ probing)
  std::vector<Rng> node_rng;   ///< one per node

  // --- cached tree structure (rebuilt only when a repair lands) ----
  std::vector<wsn::VertexId> parents;     ///< -1 for root / non-members
  std::vector<wsn::EdgeId> parent_edges;  ///< -1 for root / non-members
  std::vector<char> on_tree;              ///< per-link membership mask
  std::vector<wsn::VertexId> bfs_order;   ///< members, parents first
  std::vector<int> child_offsets;         ///< children CSR (n + 1)
  std::vector<wsn::VertexId> child_list;
  std::vector<int> owned_offsets;         ///< link-ownership CSR (n + 1)
  std::vector<wsn::EdgeId> owned_links;   ///< ascending per owner

  // --- window buffers ----------------------------------------------
  int window_start = 0;
  std::vector<TxnOutcome> txn;  ///< n * window_rounds slots
  /// Per-shard fired-event lists, merged (sorted by link id) at the
  /// serial checkpoint.  The legacy engine uses shard 0 only.
  std::vector<std::vector<LinkEvent>> fired_churn;
  std::vector<std::vector<LinkEvent>> fired_est;
  std::vector<char> reach;      ///< readings scratch (per-node)
  std::vector<Tally> tallies;   ///< commit-chunk scratch

  // --- accumulators -------------------------------------------------
  std::vector<double> consumed;
  std::vector<int> pending_degrade;
  std::vector<int> pending_improve;
  std::uint64_t delivered_total = 0;
  std::uint64_t data_tx_total = 0;
  std::uint64_t ack_tx_total = 0;
  std::uint64_t slots_total = 0;
  long long transactions_total = 0;
  int complete_rounds = 0;
  int completed_rounds = 0;
  int windows_committed = 0;
  double lag_sum = 0.0;
  bool tree_dirty = false;  ///< set by repairs; caches need a rebuild
  bool stopped = false;     ///< budget exhausted
  DataPlaneResult out;

  // --- helpers ------------------------------------------------------
  TxnOutcome& slot(wsn::VertexId v, int k) {
    return txn[static_cast<std::size_t>(v) * static_cast<std::size_t>(window_rounds) +
               static_cast<std::size_t>(k)];
  }
  const TxnOutcome& slot(wsn::VertexId v, int k) const {
    return txn[static_cast<std::size_t>(v) * static_cast<std::size_t>(window_rounds) +
               static_cast<std::size_t>(k)];
  }
  /// Commit-map chunk count; a function of `n` only so the map's
  /// floating-point grouping is identical for every engine/thread count.
  int chunk_count() const;
  bool estimator_mode() const {
    return options->repair == RepairMode::kEstimator;
  }
  bool probing() const {
    return estimator_mode() && options->probe_probability > 0.0;
  }

  /// Charges the budget for the next window; returns the rounds granted
  /// (0 when the budget ran dry — `stopped` is set).
  int plan_window();

  /// Recomputes every tree cache from `maintainer.tree()`.
  void rebuild_tree_caches();

  // --- per-entity handlers (parallel-safe for distinct entities) ---
  /// Churns one link from its own stream and re-derives its channel.
  /// Appends the fired event to `fired` when non-null.
  void churn_link(wsn::EdgeId e, std::vector<LinkEvent>* fired);
  /// Runs node `v`'s ARQ transaction into `slot(v, k)`; in estimator
  /// mode the outcome is observed and a fired event lands in `fired`.
  void transact_node(wsn::VertexId v, int k, std::vector<LinkEvent>* fired);
  /// Probes one idle link (estimator mode) from its own stream.
  void probe_link(wsn::EdgeId e, std::vector<LinkEvent>* fired);

  // --- serial checkpoint pieces (identical code in both engines) ---
  /// Drains the per-shard lists into one vector sorted by link id.
  std::vector<LinkEvent> drain_sorted(std::vector<std::vector<LinkEvent>>& fired);
  /// kOracle: feeds the drained churn events to the maintainer.
  void apply_oracle_events();
  /// kEstimator: records the drained churn events as pending true
  /// changes for the detection-lag accounting.
  void apply_pending_marks(int round);
  /// kEstimator: applies the drained estimator events — believed-view
  /// update, repairs, detection/false-positive bookkeeping.
  void apply_estimator_events(int round);
  /// Readings + energy + work counters for the committed window
  /// (`planned` rounds starting at `window_start`).
  void commit_window(int planned);
  /// Bumps the window count and emits a metrics snapshot when due.
  void end_window(int planned);

  /// Normalizes the accumulators into `out` and bumps the dataplane.*
  /// counters (both engines; the DES driver adds its des.* instruments).
  void finalize();
};

/// One logical process per node: dispatches the node's events against
/// the shared state.  `fired_churn`/`fired_est` are the owning shard's
/// event lists.
class LogicalProcess {
 public:
  LogicalProcess() = default;
  explicit LogicalProcess(std::int32_t node) : node_(node) {}

  std::int32_t node() const noexcept { return node_; }

  /// Handles one event.  `kNodeRound` fuses churn -> transaction ->
  /// probes for the round `event.seq`; the oracle-mode pair splits the
  /// same work at the repair barrier.
  void handle(const Event& event, SimState& s,
              std::vector<LinkEvent>* fired_churn,
              std::vector<LinkEvent>* fired_est);

 private:
  void churn_owned(SimState& s, std::vector<LinkEvent>* fired);
  void probe_owned(SimState& s, std::vector<LinkEvent>* fired);

  std::int32_t node_ = 0;
};

/// Upper bound on the slots one round can occupy: every transaction runs
/// at most `max_attempts` attempt slots plus the capped backoff gaps,
/// and the two oracle-mode phases need one offset each.  Transmission
/// delay is what gives the conservative engine its lookahead: an event
/// at round r cannot affect any state read before slot (r+1)*span.
SlotTime slots_per_round(const radio::ArqPolicy& policy);

}  // namespace mrlc::dist::engine
