#include "distributed/link_estimator.hpp"

#include <algorithm>

namespace mrlc::dist {

LinkEstimatorBank::LinkEstimatorBank(const wsn::Network& net,
                                     EstimatorOptions options)
    : options_(options) {
  options_.validate();
  links_.resize(static_cast<std::size_t>(net.link_count()));
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    State& s = links_[static_cast<std::size_t>(id)];
    // The raw EWMA tracks observed transaction successes (~ q * q_ack when
    // samples are ACK outcomes); seed it at what the survey PRR would look
    // like through that lens so the first samples do not register as a
    // quality change.
    s.estimate = net.link_prr(id) * options_.sample_compensation;
    s.reported = s.estimate;
  }
}

double LinkEstimatorBank::compensated(double raw) const {
  return std::clamp(raw / options_.sample_compensation, options_.min_prr,
                    options_.max_prr);
}

std::optional<LinkEvent> LinkEstimatorBank::observe_detached(wsn::EdgeId link,
                                                             bool success) {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(links_.size()),
               "link out of range");
  State& s = links_[static_cast<std::size_t>(link)];
  s.estimate = std::clamp((1.0 - options_.ewma_alpha) * s.estimate +
                              options_.ewma_alpha * (success ? 1.0 : 0.0),
                          options_.min_prr, 1.0);
  ++s.samples;
  if (s.samples < options_.min_samples) return std::nullopt;

  // The compensation factor cancels in the relative comparison, so the
  // hysteresis operates on the raw estimates directly.
  const double drop = (s.reported - s.estimate) / s.reported;
  const double rise = (s.estimate - s.reported) / s.reported;
  LinkEvent event;
  if (drop >= options_.degrade_threshold) {
    event.kind = LinkEvent::Kind::kDegraded;
  } else if (rise >= options_.improve_threshold) {
    event.kind = LinkEvent::Kind::kImproved;
  } else {
    return std::nullopt;
  }
  event.link = link;
  event.old_prr = compensated(s.reported);
  event.new_prr = compensated(s.estimate);
  s.reported = s.estimate;
  return event;
}

void LinkEstimatorBank::observe(wsn::EdgeId link, bool success) {
  State& s = links_[static_cast<std::size_t>(link)];
  const int queued_index = s.pending;
  std::optional<LinkEvent> fired = observe_detached(link, success);
  if (!fired) return;
  if (queued_index >= 0) {
    // A newer observation supersedes the queued event for this link.  The
    // consumer never saw the intermediate anchors, so the merged event keeps
    // the old_prr of the value it last heard.
    LinkEvent& queued = pending_[static_cast<std::size_t>(queued_index)];
    fired->old_prr = queued.old_prr;
    queued = *fired;
  } else {
    s.pending = static_cast<int>(pending_.size());
    pending_.push_back(*fired);
  }
}

std::vector<LinkEvent> LinkEstimatorBank::poll() {
  std::vector<LinkEvent> events = std::move(pending_);
  pending_.clear();
  for (const LinkEvent& event : events) {
    links_[static_cast<std::size_t>(event.link)].pending = -1;
  }
  return events;
}

double LinkEstimatorBank::estimate(wsn::EdgeId link) const {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(links_.size()),
               "link out of range");
  return compensated(links_[static_cast<std::size_t>(link)].estimate);
}

long long LinkEstimatorBank::sample_count(wsn::EdgeId link) const {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(links_.size()),
               "link out of range");
  return links_[static_cast<std::size_t>(link)].samples;
}

double LinkEstimatorBank::reported(wsn::EdgeId link) const {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(links_.size()),
               "link out of range");
  return compensated(links_[static_cast<std::size_t>(link)].reported);
}

void LinkEstimatorBank::write_estimates(wsn::Network& view) const {
  MRLC_REQUIRE(view.link_count() == static_cast<int>(links_.size()),
               "view does not match the anchored network");
  for (wsn::EdgeId id = 0; id < view.link_count(); ++id) {
    view.set_link_prr(id, compensated(links_[static_cast<std::size_t>(id)].estimate));
  }
}

}  // namespace mrlc::dist
