#include "distributed/des_engine.hpp"

#include <algorithm>
#include <limits>

#include "common/metrics.hpp"
#include "common/parallel.hpp"

namespace mrlc::dist::engine {

namespace {

struct Shard {
  EventQueue queue;
  std::uint64_t popped = 0;
};

}  // namespace

void run_des(SimState& s) {
  s.parallel_commit = true;
  const int shards = s.shard_count;
  const bool oracle = s.options->repair == RepairMode::kOracle;
  const bool estimator = s.estimator_mode();

  // Static assignment: shard i owns the contiguous node range
  // [n*i/shards, n*(i+1)/shards) and every event of those processes.
  std::vector<LogicalProcess> lps;
  lps.reserve(static_cast<std::size_t>(s.n));
  for (wsn::VertexId v = 0; v < s.n; ++v) lps.emplace_back(v);
  std::vector<Shard> shard_state(static_cast<std::size_t>(shards));
  auto shard_lo = [&](int i) {
    return static_cast<int>(static_cast<long long>(s.n) * i / shards);
  };

  // Seed each process's first round.  Fused modes wake once per round;
  // oracle mode splits the round at the repair barrier (churn at slot
  // offset 0, the transaction at offset 1).
  std::uint64_t seeded = 0;
  for (int i = 0; i < shards; ++i) {
    EventQueue& q = shard_state[static_cast<std::size_t>(i)].queue;
    const int lo = shard_lo(i);
    const int hi = shard_lo(i + 1);
    q.reserve(static_cast<std::size_t>(hi - lo) * (oracle ? 2 : 1));
    for (int v = lo; v < hi; ++v) {
      if (oracle) {
        q.push(Event{0, v, 0, EventKind::kChurnWake});
        q.push(Event{1, v, 0, EventKind::kTxnWake});
        seeded += 2;
      } else {
        q.push(Event{0, v, 0, EventKind::kNodeRound});
        seeded += 1;
      }
    }
  }

  // Drains every shard strictly below `horizon` on the pool.  Each pop
  // reschedules the process's next occurrence one round-span later, so a
  // queue is never empty and `top()` after the drain is the shard's next
  // event time — the minimum over shards is the global safe time.
  SlotTime safe_time = 0;
  auto drain = [&](SlotTime horizon) {
    default_pool().for_each(shards, [&](int i) {
      Shard& shard = shard_state[static_cast<std::size_t>(i)];
      std::vector<LinkEvent>* churn_fired =
          oracle || estimator ? &s.fired_churn[static_cast<std::size_t>(i)]
                              : nullptr;
      std::vector<LinkEvent>* est_fired =
          estimator ? &s.fired_est[static_cast<std::size_t>(i)] : nullptr;
      while (shard.queue.top().time < horizon) {
        const Event event = shard.queue.pop();
        lps[static_cast<std::size_t>(event.node)].handle(event, s, churn_fired,
                                                         est_fired);
        shard.queue.push(Event{event.time + s.round_span, event.node,
                               event.seq + 1, event.kind});
        ++shard.popped;
      }
    });
    SlotTime next = std::numeric_limits<SlotTime>::max();
    for (const Shard& shard : shard_state) {
      next = std::min(next, shard.queue.top().time);
    }
    safe_time = next;
  };

  // Instruments are advanced once per window (before the flush point), so
  // in-flight snapshots show live progress; the per-window deltas are
  // functions of the round count alone, never of the thread count.
  static metrics::Counter& scheduled =
      metrics::counter("dataplane.events_scheduled");
  static metrics::Counter& processed =
      metrics::counter("dataplane.events_processed");
  static metrics::Counter& windows = metrics::counter("des.windows");
  static metrics::Counter& checkpoint_count = metrics::counter("des.checkpoints");
  metrics::Gauge& window_gauge = metrics::gauge("des.window_rounds");
  metrics::Gauge& safe_gauge = metrics::gauge("des.safe_time");
  window_gauge.set(static_cast<double>(s.window_rounds));
  // Every pop schedules the successor, so scheduled = seeds + pops.
  scheduled.add(static_cast<long long>(seeded));
  std::uint64_t reported_popped = 0;

  std::uint64_t checkpoints = 0;
  std::uint64_t reported_checkpoints = 0;
  while (!s.stopped && s.completed_rounds < s.options->rounds) {
    const int planned = s.plan_window();
    if (planned == 0) break;
    const int start = s.window_start;
    if (oracle) {
      // planned == 1: split the round at the repair barrier.
      const SlotTime base =
          static_cast<SlotTime>(start) * s.round_span;
      drain(base + 1);
      s.apply_oracle_events();
      ++checkpoints;
      drain(base + s.round_span);
    } else {
      drain(static_cast<SlotTime>(start + planned) * s.round_span);
      if (estimator) s.apply_pending_marks(start);
    }
    s.commit_window(planned);
    if (estimator) {
      s.apply_estimator_events(start);
      ++checkpoints;
    }
    ++checkpoints;  // the commit itself

    std::uint64_t popped = 0;
    for (const Shard& shard : shard_state) popped += shard.popped;
    scheduled.add(static_cast<long long>(popped - reported_popped));
    processed.add(static_cast<long long>(popped - reported_popped));
    reported_popped = popped;
    windows.add(1);
    checkpoint_count.add(static_cast<long long>(checkpoints - reported_checkpoints));
    reported_checkpoints = checkpoints;
    safe_gauge.set(static_cast<double>(safe_time));

    s.end_window(planned);
  }
  s.finalize();
}

}  // namespace mrlc::dist::engine
