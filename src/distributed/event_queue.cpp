#include "distributed/event_queue.hpp"

#include <utility>

namespace mrlc::dist {

void EventQueue::push(const Event& event) {
  heap_.push_back(event);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!event_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Event EventQueue::pop() {
  MRLC_REQUIRE(!heap_.empty(), "pop() on an empty event queue");
  const Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < n && event_before(heap_[right], heap_[left])) best = right;
    if (!event_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return out;
}

}  // namespace mrlc::dist
