#pragma once

/// \file des_engine.hpp
/// \brief Conservative parallel discrete-event driver of the data plane.
///
/// Each worker shard owns a contiguous range of nodes, their
/// `LogicalProcess`es, and one timestamp-ordered `EventQueue`.  Virtual
/// time is counted in ARQ slots; round r spans
/// `[r * span, (r + 1) * span)` with `span = slots_per_round(policy)`.
/// Because a transaction occupies at least one slot of transmission
/// delay, nothing a process does in round r can influence state another
/// process reads before slot `(r + 1) * span` — that delay is the
/// engine's *lookahead*.  The driver therefore advances all shards in
/// bounded windows: every shard drains its queue strictly below a shared
/// horizon (a barrier-computed global safe time, GVT-lite: the horizon
/// is by construction <= min over shards of their next event time once
/// the drain returns), then a single serial checkpoint merges fired
/// events in `(timestamp, node, seq)` = link-id order, commits readings,
/// energy, and counters, and charges the PR-6 `Budget`.
///
/// Window width: `options.window_rounds` in `kNone` mode (no repairs, so
/// lookahead spans the whole window); 1 in the repair modes (a repair
/// committed at round r's checkpoint changes what round r+1 reads).
/// `kOracle` additionally splits each round at the repair barrier: churn
/// wakes drain first (horizon `r * span + 1`), the maintainer applies
/// the fired events serially, then transaction wakes drain to the round
/// boundary — matching the legacy loop, where oracle repairs take effect
/// within the same round.
///
/// Determinism: every draw comes from a per-entity forked stream, all
/// cross-shard merges happen at the serial checkpoints in a canonical
/// order, and the commit map's floating-point grouping depends only on
/// `n` — so the result is bit-identical for every shard/thread count,
/// which the `test_des` parity suite asserts.

#include "distributed/logical_process.hpp"

namespace mrlc::dist::engine {

/// Runs `s` to completion on the default thread pool.  One shard per
/// worker; with one worker the engine degenerates to a serial
/// event-queue loop and still produces the same bits.
void run_des(SimState& s);

}  // namespace mrlc::dist::engine
