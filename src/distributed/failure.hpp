#pragma once

/// \file failure.hpp
/// \brief Node-failure injection for the fault-tolerance experiments.
///
/// The paper's protocol (Section VI) handles link-quality drift; this
/// module supplies the *node death* side of the robustness story: crash
/// faults at scheduled times, and battery-depletion deaths whose times come
/// from the packet-level energy rates of `radio::simulate_depletion` (the
/// node's initial energy divided by its measured joules-per-round).  A
/// schedule is a reproducible artifact: it can be generated from a seed,
/// serialized next to a network description (`tools/mrlc_gen --faults`),
/// and replayed against a maintainer (`tools/mrlc_solve faults`,
/// `bench/extra_fault_recovery`).

#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "radio/packet_sim.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

enum class FailureKind {
  kCrash,      ///< fail-stop at a scheduled time (software fault, damage)
  kDepletion,  ///< battery exhausted (time derived from measured energy rates)
};

struct FailureEvent {
  double time = 0.0;  ///< rounds since deployment
  wsn::VertexId node = -1;
  FailureKind kind = FailureKind::kCrash;
};

/// A time-ordered list of node deaths.
struct FailureSchedule {
  std::vector<FailureEvent> events;

  bool empty() const noexcept { return events.empty(); }
  int size() const noexcept { return static_cast<int>(events.size()); }
};

/// \brief Random crash schedule: `count` distinct non-sink nodes crash at
/// uniform times in (0, horizon).
/// \param net  supplies the node population and sink id.
/// \param count  number of crashes (0 <= count < node_count).
/// \param horizon  end of the scheduling window, in rounds.
/// \param rng  randomness source (schedule is deterministic in it).
/// \return events sorted by time.
FailureSchedule random_crash_schedule(const wsn::Network& net, int count,
                                      double horizon, Rng& rng);

/// \brief The `deaths` earliest battery deaths predicted by the
/// packet-level depletion simulation of `tree` under `policy`: node v dies
/// at I(v) / joules_per_round(v).
/// \param net  supplies energies; the sink (mains-powered by convention)
///        never dies.
/// \param tree  the aggregation tree whose traffic drains the batteries.
/// \param policy  retransmission policy of the simulated data plane.
/// \param deaths  number of earliest deaths to schedule.
/// \param sample_rounds  rounds of packet simulation used to measure the
///        per-node energy rates.
/// \param rng  randomness source (schedule is deterministic in it).
/// \return events sorted by time.
FailureSchedule depletion_schedule(const wsn::Network& net,
                                   const wsn::AggregationTree& tree,
                                   const radio::RetxPolicy& policy, int deaths,
                                   int sample_rounds, Rng& rng);

/// A dense re-labelling of the surviving subnetwork, for comparing repaired
/// trees against a from-scratch rebuild (IRA and the LP baselines assume
/// every node of the instance is alive).
struct CompactNetwork {
  wsn::Network net;                     ///< alive nodes only, dense ids
  std::vector<wsn::VertexId> original;  ///< compact id -> original id
};

/// \brief Copies the alive part of `net` (nodes, links, energies) into a
/// fresh network with dense vertex ids.  The sink is always retained.
/// \return the compact network plus the compact-to-original id map.
CompactNetwork compact_alive_network(const wsn::Network& net);

/// \brief Serializes a schedule as a `fault-schedule v1` block of
/// `fault <time> <node> crash|depletion` lines — appendable to a network
/// file written by wsn::write_network (the reader there skips fault
/// lines).  Grammar: docs/file_formats.md.
void write_fault_schedule(std::ostream& out, const FailureSchedule& schedule);

/// \brief Parses the block written by write_fault_schedule.
/// \param in  stream positioned anywhere before the block; lines before
///        the `fault-schedule` header (e.g. a network description) are
///        skipped, so a combined file can be parsed by both readers.
/// \return the parsed schedule; empty if no header is present.
FailureSchedule read_fault_schedule(std::istream& in);

}  // namespace mrlc::dist
