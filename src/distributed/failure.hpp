#pragma once

/// \file failure.hpp
/// \brief Node-failure injection for the fault-tolerance experiments.
///
/// The paper's protocol (Section VI) handles link-quality drift; this
/// module supplies the *node death* side of the robustness story: crash
/// faults at scheduled times, and battery-depletion deaths whose times come
/// from the packet-level energy rates of `radio::simulate_depletion` (the
/// node's initial energy divided by its measured joules-per-round).  A
/// schedule is a reproducible artifact: it can be generated from a seed,
/// serialized next to a network description (`tools/mrlc_gen --faults`),
/// and replayed against a maintainer (`tools/mrlc_solve faults`,
/// `bench/extra_fault_recovery`).

#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "radio/packet_sim.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::dist {

enum class FailureKind {
  kCrash,      ///< fail-stop at a scheduled time (software fault, damage)
  kDepletion,  ///< battery exhausted (time derived from measured energy rates)
};

struct FailureEvent {
  double time = 0.0;  ///< rounds since deployment
  wsn::VertexId node = -1;
  FailureKind kind = FailureKind::kCrash;
};

/// A time-ordered list of node deaths.
struct FailureSchedule {
  std::vector<FailureEvent> events;

  bool empty() const noexcept { return events.empty(); }
  int size() const noexcept { return static_cast<int>(events.size()); }
};

/// `count` distinct non-sink nodes crash at uniform times in (0, horizon).
/// Deterministic in `rng`; events come back sorted by time.
FailureSchedule random_crash_schedule(const wsn::Network& net, int count,
                                      double horizon, Rng& rng);

/// The `deaths` earliest battery deaths predicted by the packet-level
/// depletion simulation of `tree` under `policy`: node v dies at
/// I(v) / joules_per_round(v).  The sink (mains-powered by convention)
/// never dies.  Deterministic in `rng`; events sorted by time.
FailureSchedule depletion_schedule(const wsn::Network& net,
                                   const wsn::AggregationTree& tree,
                                   const radio::RetxPolicy& policy, int deaths,
                                   int sample_rounds, Rng& rng);

/// A dense re-labelling of the surviving subnetwork, for comparing repaired
/// trees against a from-scratch rebuild (IRA and the LP baselines assume
/// every node of the instance is alive).
struct CompactNetwork {
  wsn::Network net;                     ///< alive nodes only, dense ids
  std::vector<wsn::VertexId> original;  ///< compact id -> original id
};

/// Copies the alive part of `net` (nodes, links, energies) into a fresh
/// network with dense vertex ids.  The sink is always retained.
CompactNetwork compact_alive_network(const wsn::Network& net);

/// Serializes a schedule as a `fault-schedule v1` block of
/// `fault <time> <node> crash|depletion` lines — appendable to a network
/// file written by wsn::write_network (the reader there skips fault lines).
void write_fault_schedule(std::ostream& out, const FailureSchedule& schedule);

/// Parses the block written by write_fault_schedule.  Lines before the
/// `fault-schedule` header (e.g. a network description) are skipped, so a
/// combined file can be parsed by both readers.  Returns an empty schedule
/// if no header is present.
FailureSchedule read_fault_schedule(std::istream& in);

}  // namespace mrlc::dist
