#include "distributed/maintainer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "prufer/updates.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {

DistributedMaintainer::DistributedMaintainer(const wsn::Network& net,
                                             wsn::AggregationTree initial,
                                             double lifetime_bound,
                                             MaintainerOptions options)
    : tree_(std::move(initial)), lifetime_bound_(lifetime_bound), options_(options) {
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  MRLC_REQUIRE(net.sink() == 0,
               "the Prüfer protocol requires the sink to carry label 0");
  MRLC_REQUIRE(tree_.node_count() == net.node_count(), "tree/network size mismatch");
  refresh_code();
}

void DistributedMaintainer::refresh_code() {
  if (tree_.node_count() < 2) return;
  if (tree_.member_count() == tree_.node_count()) {
    code_ = prufer::encode(tree_.parents());
  } else {
    // A partial tree (off-tree subtrees) has no Prüfer code; replicas
    // exchange raw parent records until the tree is whole again.
    code_.clear();
  }
}

bool DistributedMaintainer::can_accept_child(const wsn::Network& net,
                                             wsn::VertexId v) const {
  return net.energy_model().node_lifetime(net.initial_energy(v),
                                          tree_.children_count(v) + 1) >=
         lifetime_bound_;
}

int DistributedMaintainer::broadcast_cost() const {
  // Flooding an update down the tree: every non-leaf member transmits once
  // (off-tree subtrees cannot be reached and do not forward).
  int transmitting = 0;
  for (wsn::VertexId v = 0; v < tree_.node_count(); ++v) {
    if (tree_.contains(v) && tree_.children_count(v) > 0) ++transmitting;
  }
  return transmitting;
}

bool DistributedMaintainer::on_link_degraded(const wsn::Network& net,
                                             wsn::EdgeId link) {
  ++stats_.degradation_events;
  int event_messages = 0;

  // Identify the tree child below the degraded link (no-op for non-tree
  // links; the tree does not use them).
  const graph::Edge& bad = net.topology().edge(link);
  wsn::VertexId child = -1;
  if (tree_.parent(bad.u) == bad.v && tree_.parent_edge(bad.u) == link) {
    child = bad.u;
  } else if (tree_.parent(bad.v) == bad.u && tree_.parent_edge(bad.v) == link) {
    child = bad.v;
  }
  if (child == -1 || !tree_.contains(child)) {
    // Non-tree link, or an internal link of an off-tree subtree: nothing
    // to repair on the live tree.
    stats_.messages_per_event.push_back(0);
    return false;
  }

  // The component that would be cut off is exactly child's subtree.
  std::vector<bool> in_component(static_cast<std::size_t>(net.node_count()), false);
  for (int v : prufer::subtree_members(tree_.parents(), child)) {
    in_component[static_cast<std::size_t>(v)] = true;
  }

  // Scan crossing links.  Candidates incident to the child itself follow
  // the paper's scheme exactly; other crossing links require re-rooting the
  // component and are considered only if no child-incident link is viable.
  struct Candidate {
    wsn::EdgeId link = -1;
    wsn::VertexId inside = -1;   // endpoint inside the component
    wsn::VertexId outside = -1;  // new parent
    double cost = std::numeric_limits<double>::infinity();
  };
  std::optional<Candidate> best_simple;
  std::optional<Candidate> best_evert;
  for (graph::EdgeId id : net.topology().alive_edge_ids()) {
    if (id == link) continue;
    const graph::Edge& e = net.topology().edge(id);
    const bool u_in = in_component[static_cast<std::size_t>(e.u)];
    const bool v_in = in_component[static_cast<std::size_t>(e.v)];
    if (u_in == v_in) continue;
    Candidate cand;
    cand.link = id;
    cand.inside = u_in ? e.u : e.v;
    cand.outside = u_in ? e.v : e.u;
    cand.cost = net.link_cost(id);
    // The new parent must be on the live tree: hanging the component off a
    // partitioned subtree would not reconnect it to the sink.
    if (!tree_.contains(cand.outside)) continue;
    if (!can_accept_child(net, cand.outside)) continue;
    auto& slot = cand.inside == child ? best_simple : best_evert;
    if (!slot.has_value() || cand.cost < slot->cost) slot = cand;
  }

  // Only switch if the replacement actually beats the degraded link.
  const double bad_cost = net.link_cost(link);
  auto beats = [&](const std::optional<Candidate>& c) {
    return c.has_value() && c->cost < bad_cost;
  };

  if (beats(best_simple)) {
    tree_.reparent(net, child, best_simple->outside, best_simple->link);
  } else if (beats(best_evert)) {
    // Generalized repair: re-root the component at the inside endpoint.
    prufer::ParentArray parents = tree_.parents();
    prufer::evert_and_attach(parents, child, best_evert->inside,
                             best_evert->outside);
    // from_forest, not from_parents: after node deaths the array may still
    // hold detached subtrees (parent -1), which this repair must not touch.
    wsn::AggregationTree candidate = wsn::AggregationTree::from_forest(net, parents);
    // Eversion shifts children along the reversed path; accept only if the
    // lifetime bound still holds everywhere.
    if (wsn::network_lifetime(net, candidate) < lifetime_bound_) {
      stats_.messages_per_event.push_back(0);
      return false;
    }
    tree_ = std::move(candidate);
  } else {
    stats_.messages_per_event.push_back(0);
    return false;
  }

  refresh_code();
  ++stats_.updates_applied;
  event_messages += broadcast_cost();
  stats_.total_messages += event_messages;
  stats_.messages_per_event.push_back(event_messages);
  return true;
}

bool DistributedMaintainer::on_link_improved(const wsn::Network& net,
                                             wsn::EdgeId link) {
  ++stats_.improvement_events;
  int event_messages = 0;
  bool changed = false;

  // ILU (Algorithm 4): let the improved link displace the costlier of the
  // two parent links it can replace, then chase the displaced link.
  wsn::EdgeId current = link;
  for (int step = 0; step < options_.max_chain_length; ++step) {
    const graph::Edge& e = net.topology().edge(current);
    const double link_cost = net.link_cost(current);

    struct Move {
      wsn::VertexId child = -1;
      wsn::VertexId new_parent = -1;
      double gain = 0.0;
      wsn::EdgeId displaced = -1;
    };
    std::optional<Move> best;
    for (const auto& [x, y] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      if (x == tree_.root()) continue;
      // ILU swaps are defined on the live tree; off-tree nodes rejoin via
      // retry_detached, not via opportunistic swaps.
      if (!tree_.contains(x) || !tree_.contains(y)) continue;
      if (tree_.parent(x) == y) continue;        // link already in the tree
      if (tree_.in_subtree(x, y)) continue;      // would create a cycle
      if (!can_accept_child(net, y)) continue;   // lifetime constraint on y
      const wsn::EdgeId old_edge = tree_.parent_edge(x);
      const double gain = net.link_cost(old_edge) - link_cost;
      if (gain <= options_.improvement_tolerance) continue;
      if (!best.has_value() || gain > best->gain) {
        best = Move{x, y, gain, old_edge};
      }
    }
    if (!best.has_value()) break;

    tree_.reparent(net, best->child, best->new_parent, current);
    refresh_code();
    changed = true;
    ++stats_.updates_applied;
    event_messages += broadcast_cost();
    current = best->displaced;  // recurse: the displaced link "got better"
  }

  stats_.total_messages += event_messages;
  stats_.messages_per_event.push_back(event_messages);
  return changed;
}

// ------------------------------------------------------ failure recovery --

namespace {

using Parents = std::vector<wsn::VertexId>;

std::vector<int> count_children(const Parents& parents) {
  std::vector<int> counts(parents.size(), 0);
  for (wsn::VertexId p : parents) {
    if (p != -1) ++counts[static_cast<std::size_t>(p)];
  }
  return counts;
}

std::vector<std::vector<wsn::VertexId>> children_adjacency(const Parents& parents) {
  std::vector<std::vector<wsn::VertexId>> kids(parents.size());
  for (std::size_t v = 0; v < parents.size(); ++v) {
    if (parents[v] != -1) {
      kids[static_cast<std::size_t>(parents[v])].push_back(
          static_cast<wsn::VertexId>(v));
    }
  }
  return kids;
}

std::vector<wsn::VertexId> subtree_of(
    const std::vector<std::vector<wsn::VertexId>>& kids, wsn::VertexId root) {
  std::vector<wsn::VertexId> members;
  members.push_back(root);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (wsn::VertexId c : kids[static_cast<std::size_t>(members[i])]) {
      members.push_back(c);
    }
  }
  return members;
}

/// Membership mask of the component containing `root` (the live tree).
std::vector<char> sink_component(const Parents& parents, wsn::VertexId root) {
  const auto kids = children_adjacency(parents);
  std::vector<char> member(parents.size(), 0);
  for (wsn::VertexId v : subtree_of(kids, root)) {
    member[static_cast<std::size_t>(v)] = 1;
  }
  return member;
}

double node_lifetime_with(const wsn::Network& net, wsn::VertexId v, int children) {
  return net.energy_model().node_lifetime(net.initial_energy(v), children);
}

/// A candidate way to hang the subtree rooted at `root` back on the tree.
struct AttachCandidate {
  wsn::VertexId root = -1;     ///< orphaned subtree root
  wsn::EdgeId link = -1;
  wsn::VertexId inside = -1;   ///< endpoint inside the subtree
  wsn::VertexId outside = -1;  ///< surviving parent on the live tree
  double cost = 0.0;
  /// min post-attach lifetime over the affected nodes (the adopting parent
  /// and, on an eversion, every node of the reversed path).
  double quality = 0.0;
};

/// Evaluates attaching `root`'s subtree through (inside, outside): returns
/// the minimum post-attach lifetime over affected nodes.  Eversion shifts
/// children along the reversed path, so those nodes are re-checked too.
double attach_quality(const wsn::Network& net, const Parents& parents,
                      const std::vector<int>& counts, wsn::VertexId root,
                      wsn::VertexId inside, wsn::VertexId outside) {
  double quality =
      node_lifetime_with(net, outside, counts[static_cast<std::size_t>(outside)] + 1);
  if (inside == root) return quality;
  // Simulate the eversion on a scratch copy and re-check every node whose
  // children count shifted (the reversed path root .. inside).
  std::vector<wsn::VertexId> path;
  for (wsn::VertexId v = inside;; v = parents[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == root) break;
  }
  Parents scratch = parents;
  prufer::evert_and_attach(scratch, root, inside, outside);
  const std::vector<int> new_counts = count_children(scratch);
  for (wsn::VertexId v : path) {
    quality = std::min(
        quality, node_lifetime_with(net, v, new_counts[static_cast<std::size_t>(v)]));
  }
  return quality;
}

}  // namespace

DistributedMaintainer::ReattachReport DistributedMaintainer::reattach_subtrees(
    const wsn::Network& net, Parents& parents, std::vector<wsn::VertexId> roots,
    std::vector<wsn::VertexId>& failed_roots) {
  ReattachReport report;
  std::vector<int> counts = count_children(parents);
  std::vector<char> live = sink_component(parents, tree_.root());

  // Subtree membership per unplaced root, refreshed as roots are placed.
  auto members_of = [&](wsn::VertexId root) {
    return subtree_of(children_adjacency(parents), root);
  };

  auto apply_attach = [&](const AttachCandidate& c) {
    if (c.inside == c.root) {
      parents[static_cast<std::size_t>(c.root)] = c.outside;
    } else {
      prufer::evert_and_attach(parents, c.root, c.inside, c.outside);
    }
    counts = count_children(parents);
    for (wsn::VertexId v : members_of(c.inside == c.root ? c.root : c.inside)) {
      live[static_cast<std::size_t>(v)] = 1;
    }
  };

  while (!roots.empty()) {
    // Gather, over every still-unplaced subtree, all crossing links to the
    // live tree; feasible ones (LC holds everywhere after the attach) are
    // preferred by cost, exactly like the Link-Getting-Worse repair.
    std::optional<AttachCandidate> best_feasible;
    std::vector<AttachCandidate> infeasible;  // capacity-blocked fallbacks
    for (wsn::VertexId root : roots) {
      std::vector<char> in_subtree_mask(parents.size(), 0);
      for (wsn::VertexId v : members_of(root)) {
        in_subtree_mask[static_cast<std::size_t>(v)] = 1;
      }
      for (graph::EdgeId id : net.topology().alive_edge_ids()) {
        const graph::Edge& e = net.topology().edge(id);
        const bool u_in = in_subtree_mask[static_cast<std::size_t>(e.u)] != 0;
        const bool v_in = in_subtree_mask[static_cast<std::size_t>(e.v)] != 0;
        if (u_in == v_in) continue;
        AttachCandidate cand;
        cand.root = root;
        cand.link = id;
        cand.inside = u_in ? e.u : e.v;
        cand.outside = u_in ? e.v : e.u;
        if (!live[static_cast<std::size_t>(cand.outside)]) continue;
        cand.cost = net.link_cost(id);
        cand.quality =
            attach_quality(net, parents, counts, root, cand.inside, cand.outside);
        if (cand.quality >= lifetime_bound_) {
          if (!best_feasible.has_value() || cand.cost < best_feasible->cost) {
            best_feasible = cand;
          }
        } else {
          infeasible.push_back(cand);
        }
      }
    }

    if (best_feasible.has_value()) {
      apply_attach(*best_feasible);
      roots.erase(std::find(roots.begin(), roots.end(), best_feasible->root));
      ++report.reattached;
      ++stats_.reattachments;
      continue;
    }

    // Cascade: a capacity-blocked parent can adopt the subtree if one of
    // its current children moves to another feasible parent first (the
    // parent's children count is then unchanged by adopt-after-relocate).
    std::sort(infeasible.begin(), infeasible.end(),
              [](const AttachCandidate& a, const AttachCandidate& b) {
                return a.cost < b.cost;
              });
    bool cascaded = false;
    for (const AttachCandidate& cand : infeasible) {
      if (cascaded) break;
      const wsn::VertexId p = cand.outside;
      // Only a plain capacity block is fixable by relocation; eversion
      // infeasibility along the path is not helped by freeing p.
      if (cand.inside != cand.root) continue;
      for (wsn::VertexId m = 0; m < static_cast<wsn::VertexId>(parents.size());
           ++m) {
        if (parents[static_cast<std::size_t>(m)] != p || !live[static_cast<std::size_t>(m)]) {
          continue;
        }
        // Cheapest feasible new home for m outside its own subtree.
        std::vector<char> m_subtree(parents.size(), 0);
        for (wsn::VertexId v : members_of(m)) {
          m_subtree[static_cast<std::size_t>(v)] = 1;
        }
        wsn::EdgeId best_link = -1;
        wsn::VertexId best_q = -1;
        double best_cost = std::numeric_limits<double>::infinity();
        for (graph::EdgeId id : net.topology().alive_edge_ids()) {
          const graph::Edge& e = net.topology().edge(id);
          wsn::VertexId q = -1;
          if (e.u == m) q = e.v;
          else if (e.v == m) q = e.u;
          if (q == -1 || q == p) continue;
          if (!live[static_cast<std::size_t>(q)]) continue;
          if (m_subtree[static_cast<std::size_t>(q)]) continue;  // cycle
          if (node_lifetime_with(net, q, counts[static_cast<std::size_t>(q)] + 1) <
              lifetime_bound_) {
            continue;
          }
          if (net.link_cost(id) < best_cost) {
            best_cost = net.link_cost(id);
            best_link = id;
            best_q = q;
          }
        }
        if (best_link == -1) continue;
        parents[static_cast<std::size_t>(m)] = best_q;
        counts = count_children(parents);
        ++report.cascade_moves;
        ++stats_.cascade_moves;
        apply_attach(cand);
        roots.erase(std::find(roots.begin(), roots.end(), cand.root));
        ++report.reattached;
        ++stats_.reattachments;
        cascaded = true;
        break;
      }
    }
    if (cascaded) continue;

    // Graceful degradation: relax LC minimally to admit the least-bad
    // candidate (the one with the highest post-attach bottleneck lifetime).
    if (options_.allow_lc_relaxation && !infeasible.empty()) {
      const AttachCandidate* least_bad = &infeasible.front();
      for (const AttachCandidate& cand : infeasible) {
        if (cand.quality > least_bad->quality) least_bad = &cand;
      }
      lifetime_bound_ = least_bad->quality;
      report.relaxed = true;
      ++stats_.lc_relaxations;
      apply_attach(*least_bad);
      roots.erase(std::find(roots.begin(), roots.end(), least_bad->root));
      ++report.reattached;
      ++stats_.reattachments;
      continue;
    }

    // No crossing link (or none admissible): the remaining subtrees are
    // partitioned off.
    for (wsn::VertexId root : roots) failed_roots.push_back(root);
    break;
  }
  return report;
}

RepairOutcome DistributedMaintainer::on_node_failed(const wsn::Network& net,
                                                    wsn::VertexId dead) {
  MRLC_REQUIRE(dead >= 0 && dead < tree_.node_count(), "node out of range");
  MRLC_REQUIRE(dead != tree_.root(), "the sink cannot fail");
  MRLC_REQUIRE(!net.node_alive(dead),
               "call net.fail_node(dead) before notifying the maintainer");
  ++stats_.node_failures;

  RepairOutcome outcome;
  Parents parents = tree_.parents();
  std::vector<wsn::VertexId> orphans;
  for (wsn::VertexId v = 0; v < tree_.node_count(); ++v) {
    if (parents[static_cast<std::size_t>(v)] == dead) {
      orphans.push_back(v);
      parents[static_cast<std::size_t>(v)] = -1;
    }
  }
  const bool was_member = tree_.contains(dead);
  parents[static_cast<std::size_t>(dead)] = -1;

  std::vector<wsn::VertexId> failed_roots;
  ReattachReport report;
  if (was_member) {
    report = reattach_subtrees(net, parents, std::move(orphans), failed_roots);
  } else {
    // The node died inside an already-partitioned component: its subtrees
    // stay detached (they had no path to the sink before and still don't).
    failed_roots = std::move(orphans);
  }

  const auto kids = children_adjacency(parents);
  for (wsn::VertexId root : failed_roots) {
    ++stats_.partitions;
    for (wsn::VertexId v : subtree_of(kids, root)) outcome.detached.push_back(v);
  }

  tree_ = wsn::AggregationTree::from_forest(net, parents);
  refresh_code();

  outcome.status = !failed_roots.empty() ? RepairStatus::kPartitioned
                   : report.relaxed      ? RepairStatus::kHealedDegraded
                                         : RepairStatus::kHealed;
  outcome.effective_bound = lifetime_bound_;
  outcome.reattached_subtrees = report.reattached;
  outcome.cascade_moves = report.cascade_moves;

  ++stats_.updates_applied;
  const int event_messages = broadcast_cost();
  stats_.total_messages += event_messages;
  stats_.messages_per_event.push_back(event_messages);
  return outcome;
}

int DistributedMaintainer::retry_detached(const wsn::Network& net) {
  std::vector<wsn::VertexId> roots;
  for (wsn::VertexId v = 0; v < tree_.node_count(); ++v) {
    if (v != tree_.root() && net.node_alive(v) && !tree_.contains(v) &&
        tree_.parent(v) == -1) {
      roots.push_back(v);
    }
  }
  if (roots.empty()) return 0;

  const int members_before = tree_.member_count();
  Parents parents = tree_.parents();
  std::vector<wsn::VertexId> still_failed;
  reattach_subtrees(net, parents, std::move(roots), still_failed);
  tree_ = wsn::AggregationTree::from_forest(net, parents);
  refresh_code();

  const int rejoined = tree_.member_count() - members_before;
  if (rejoined > 0) {
    ++stats_.updates_applied;
    const int event_messages = broadcast_cost();
    stats_.total_messages += event_messages;
    stats_.messages_per_event.push_back(event_messages);
  }
  return rejoined;
}

}  // namespace mrlc::dist
