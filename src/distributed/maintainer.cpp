#include "distributed/maintainer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "prufer/updates.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {

DistributedMaintainer::DistributedMaintainer(const wsn::Network& net,
                                             wsn::AggregationTree initial,
                                             double lifetime_bound,
                                             MaintainerOptions options)
    : tree_(std::move(initial)), lifetime_bound_(lifetime_bound), options_(options) {
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  MRLC_REQUIRE(net.sink() == 0,
               "the Prüfer protocol requires the sink to carry label 0");
  MRLC_REQUIRE(tree_.node_count() == net.node_count(), "tree/network size mismatch");
  refresh_code();
}

void DistributedMaintainer::refresh_code() {
  if (tree_.node_count() >= 2) code_ = prufer::encode(tree_.parents());
}

bool DistributedMaintainer::can_accept_child(const wsn::Network& net,
                                             wsn::VertexId v) const {
  return net.energy_model().node_lifetime(net.initial_energy(v),
                                          tree_.children_count(v) + 1) >=
         lifetime_bound_;
}

int DistributedMaintainer::broadcast_cost() const {
  // Flooding an update down the tree: every non-leaf node transmits once.
  int transmitting = 0;
  for (wsn::VertexId v = 0; v < tree_.node_count(); ++v) {
    if (tree_.children_count(v) > 0) ++transmitting;
  }
  return transmitting;
}

bool DistributedMaintainer::on_link_degraded(const wsn::Network& net,
                                             wsn::EdgeId link) {
  ++stats_.degradation_events;
  int event_messages = 0;

  // Identify the tree child below the degraded link (no-op for non-tree
  // links; the tree does not use them).
  const graph::Edge& bad = net.topology().edge(link);
  wsn::VertexId child = -1;
  if (tree_.parent(bad.u) == bad.v && tree_.parent_edge(bad.u) == link) {
    child = bad.u;
  } else if (tree_.parent(bad.v) == bad.u && tree_.parent_edge(bad.v) == link) {
    child = bad.v;
  }
  if (child == -1) {
    stats_.messages_per_event.push_back(0);
    return false;
  }

  // The component that would be cut off is exactly child's subtree.
  std::vector<bool> in_component(static_cast<std::size_t>(net.node_count()), false);
  for (int v : prufer::subtree_members(tree_.parents(), child)) {
    in_component[static_cast<std::size_t>(v)] = true;
  }

  // Scan crossing links.  Candidates incident to the child itself follow
  // the paper's scheme exactly; other crossing links require re-rooting the
  // component and are considered only if no child-incident link is viable.
  struct Candidate {
    wsn::EdgeId link = -1;
    wsn::VertexId inside = -1;   // endpoint inside the component
    wsn::VertexId outside = -1;  // new parent
    double cost = std::numeric_limits<double>::infinity();
  };
  std::optional<Candidate> best_simple;
  std::optional<Candidate> best_evert;
  for (graph::EdgeId id : net.topology().alive_edge_ids()) {
    if (id == link) continue;
    const graph::Edge& e = net.topology().edge(id);
    const bool u_in = in_component[static_cast<std::size_t>(e.u)];
    const bool v_in = in_component[static_cast<std::size_t>(e.v)];
    if (u_in == v_in) continue;
    Candidate cand;
    cand.link = id;
    cand.inside = u_in ? e.u : e.v;
    cand.outside = u_in ? e.v : e.u;
    cand.cost = net.link_cost(id);
    if (!can_accept_child(net, cand.outside)) continue;
    auto& slot = cand.inside == child ? best_simple : best_evert;
    if (!slot.has_value() || cand.cost < slot->cost) slot = cand;
  }

  // Only switch if the replacement actually beats the degraded link.
  const double bad_cost = net.link_cost(link);
  auto beats = [&](const std::optional<Candidate>& c) {
    return c.has_value() && c->cost < bad_cost;
  };

  if (beats(best_simple)) {
    tree_.reparent(net, child, best_simple->outside, best_simple->link);
  } else if (beats(best_evert)) {
    // Generalized repair: re-root the component at the inside endpoint.
    prufer::ParentArray parents = tree_.parents();
    prufer::evert_and_attach(parents, child, best_evert->inside,
                             best_evert->outside);
    wsn::AggregationTree candidate = wsn::AggregationTree::from_parents(net, parents);
    // Eversion shifts children along the reversed path; accept only if the
    // lifetime bound still holds everywhere.
    if (wsn::network_lifetime(net, candidate) < lifetime_bound_) {
      stats_.messages_per_event.push_back(0);
      return false;
    }
    tree_ = std::move(candidate);
  } else {
    stats_.messages_per_event.push_back(0);
    return false;
  }

  refresh_code();
  ++stats_.updates_applied;
  event_messages += broadcast_cost();
  stats_.total_messages += event_messages;
  stats_.messages_per_event.push_back(event_messages);
  return true;
}

bool DistributedMaintainer::on_link_improved(const wsn::Network& net,
                                             wsn::EdgeId link) {
  ++stats_.improvement_events;
  int event_messages = 0;
  bool changed = false;

  // ILU (Algorithm 4): let the improved link displace the costlier of the
  // two parent links it can replace, then chase the displaced link.
  wsn::EdgeId current = link;
  for (int step = 0; step < options_.max_chain_length; ++step) {
    const graph::Edge& e = net.topology().edge(current);
    const double link_cost = net.link_cost(current);

    struct Move {
      wsn::VertexId child = -1;
      wsn::VertexId new_parent = -1;
      double gain = 0.0;
      wsn::EdgeId displaced = -1;
    };
    std::optional<Move> best;
    for (const auto& [x, y] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      if (x == tree_.root()) continue;
      if (tree_.parent(x) == y) continue;        // link already in the tree
      if (tree_.in_subtree(x, y)) continue;      // would create a cycle
      if (!can_accept_child(net, y)) continue;   // lifetime constraint on y
      const wsn::EdgeId old_edge = tree_.parent_edge(x);
      const double gain = net.link_cost(old_edge) - link_cost;
      if (gain <= options_.improvement_tolerance) continue;
      if (!best.has_value() || gain > best->gain) {
        best = Move{x, y, gain, old_edge};
      }
    }
    if (!best.has_value()) break;

    tree_.reparent(net, best->child, best->new_parent, current);
    refresh_code();
    changed = true;
    ++stats_.updates_applied;
    event_messages += broadcast_cost();
    current = best->displaced;  // recurse: the displaced link "got better"
  }

  stats_.total_messages += event_messages;
  stats_.messages_per_event.push_back(event_messages);
  return changed;
}

}  // namespace mrlc::dist
