#include "distributed/churn.hpp"

#include <algorithm>
#include <cmath>

namespace mrlc::dist {

ChurnProcess::ChurnProcess(const wsn::Network& net, ChurnOptions options)
    : options_(options) {
  MRLC_REQUIRE(options_.mean_reversion >= 0.0 && options_.mean_reversion <= 1.0,
               "mean reversion must lie in [0, 1]");
  MRLC_REQUIRE(options_.cost_noise_sigma >= 0.0, "noise sigma must be >= 0");
  MRLC_REQUIRE(options_.min_prr > 0.0 && options_.min_prr < options_.max_prr &&
                   options_.max_prr <= 1.0,
               "PRR clamps must satisfy 0 < min < max <= 1");
  MRLC_REQUIRE(options_.event_threshold > 0.0, "event threshold must be positive");

  anchor_cost_.reserve(static_cast<std::size_t>(net.link_count()));
  reported_prr_.reserve(static_cast<std::size_t>(net.link_count()));
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    anchor_cost_.push_back(net.link_cost(id));
    reported_prr_.push_back(net.link_prr(id));
  }
  min_cost_ = wsn::Network::prr_to_cost(options_.max_prr);
  max_cost_ = wsn::Network::prr_to_cost(options_.min_prr);
}

std::optional<LinkEvent> ChurnProcess::step_link(wsn::Network& net,
                                                 wsn::EdgeId id, Rng& rng) {
  const double old_prr = net.link_prr(id);
  const double cost = net.link_cost(id);
  const double anchor = anchor_cost_[static_cast<std::size_t>(id)];
  const double next_cost =
      std::clamp(cost + options_.mean_reversion * (anchor - cost) +
                     rng.normal(0.0, options_.cost_noise_sigma),
                 min_cost_, max_cost_);
  const double next_prr = wsn::Network::cost_to_prr(next_cost);
  net.set_link_prr(id, next_prr);

  double& reported = reported_prr_[static_cast<std::size_t>(id)];
  const double relative_change = std::abs(next_prr - reported) / reported;
  if (relative_change < options_.event_threshold) return std::nullopt;
  const LinkEvent event{
      id,
      next_prr < reported ? LinkEvent::Kind::kDegraded : LinkEvent::Kind::kImproved,
      old_prr, next_prr};
  reported = next_prr;
  return event;
}

std::vector<LinkEvent> ChurnProcess::step(wsn::Network& net, Rng& rng) {
  MRLC_REQUIRE(static_cast<std::size_t>(net.link_count()) == anchor_cost_.size(),
               "network does not match the anchored process");
  ++steps_;

  std::vector<LinkEvent> events;
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    if (auto event = step_link(net, id, rng)) events.push_back(*event);
  }
  return events;
}

}  // namespace mrlc::dist
