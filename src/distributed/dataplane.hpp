#pragma once

/// \file dataplane.hpp
/// \brief Closed-loop simulation: lossy ARQ data plane -> online link
/// estimation -> Section-VI tree repair.
///
/// The missing robustness layer between `radio::arq` and
/// `DistributedMaintainer`: every round the tree carries one convergecast
/// under stop-and-wait ARQ over a (possibly bursty) channel while the true
/// link qualities drift (`ChurnProcess`).  What *triggers* a repair depends
/// on the mode:
///
/// * `kNone`      — the tree is frozen at construction (lower bound);
/// * `kOracle`    — churn's own events drive the maintainer, i.e. the
///                  paper's assumption that nodes learn quality changes
///                  instantly and exactly;
/// * `kEstimator` — repairs fire only from what nodes *observe*: ARQ ACK
///                  outcomes on tree links plus occasional probe beacons on
///                  idle links feed `LinkEstimatorBank`, whose hysteresis
///                  events drive the maintainer.  Decisions are made on the
///                  *believed* network (estimated PRRs), never the true one.
///
/// The run reports delivery ratio, energy, repair counts, the estimator's
/// detection lag behind the oracle, false-positive repairs (burst-loss
/// streaks mistaken for degradation), and the measured lifetime
/// extrapolated from the per-node ARQ energy accounting.

#include <cstdint>
#include <string>

#include "common/budget.hpp"
#include "distributed/churn.hpp"
#include "distributed/link_estimator.hpp"
#include "distributed/maintainer.hpp"
#include "radio/arq.hpp"

namespace mrlc::dist {

enum class RepairMode { kNone, kOracle, kEstimator };

/// Which engine advances the simulation.  Both are bit-identical given
/// the same options (the parity tests gate this): `kLegacy` is the
/// serial round loop kept as the oracle, `kDes` the parallel
/// discrete-event engine (per-node logical processes on statically
/// sharded event queues, advanced in bounded windows with a
/// barrier-computed safe time — see docs/algorithms.md §18).
enum class DataPlaneEngine { kLegacy, kDes };

struct DataPlaneOptions {
  int rounds = 400;
  radio::ArqPolicy arq;
  radio::ChannelConfig channel;
  EstimatorOptions estimator;
  ChurnOptions churn;
  MaintainerOptions maintainer;
  RepairMode repair = RepairMode::kEstimator;
  /// Per-round probability that an idle (non-tree) link receives one probe
  /// beacon sample; 0 disables probing (improvements then go unnoticed).
  double probe_probability = 0.1;
  std::uint64_t seed = 0xDA7A91A7EULL;
  /// Optional cooperative budget (not owned): one unit per simulated round,
  /// charged serially at each window boundary (the legacy engine uses the
  /// same window grouping, so both engines consume the budget
  /// identically).  When it runs out the simulation stops early and every
  /// per-round average is normalized by the rounds actually completed
  /// (`DataPlaneResult::rounds`).
  Budget* budget = nullptr;
  /// Engine selector; results are bit-identical either way.
  DataPlaneEngine engine = DataPlaneEngine::kDes;
  /// Rounds per conservative window in `kNone` mode (repair modes force a
  /// width of 1: a repair committed in round r changes the tree round r+1
  /// reads, which bounds the lookahead to one round).  Wider windows
  /// amortize the barrier; results do not depend on the width.
  int window_rounds = 8;
  /// Emit a metrics snapshot to `metrics_flush_path` every N committed
  /// windows (0 = off), so long-running simulations are observable in
  /// flight.
  int metrics_flush_every = 0;
  std::string metrics_flush_path;

  void validate() const {
    MRLC_REQUIRE(rounds >= 1, "need at least one round");
    MRLC_REQUIRE(probe_probability >= 0.0 && probe_probability <= 1.0,
                 "probe probability must lie in [0, 1]");
    MRLC_REQUIRE(window_rounds >= 1, "need at least one round per window");
    MRLC_REQUIRE(metrics_flush_every >= 0,
                 "metrics flush cadence must be >= 0");
  }
};

struct DataPlaneResult {
  /// Rounds actually simulated: `options.rounds` unless a budget stopped
  /// the run early.
  int rounds = 0;
  // Data plane:
  double delivery_ratio = 0.0;       ///< delivered non-sink readings / expected
  double round_success_ratio = 0.0;  ///< rounds that delivered everything
  double avg_data_tx_per_round = 0.0;
  double avg_ack_tx_per_round = 0.0;
  double avg_slots_per_round = 0.0;
  long long duplicates_suppressed = 0;
  long long packets_dropped = 0;
  double joules_per_reading = 0.0;
  /// First-node-death extrapolated from measured per-round energy rates.
  double measured_lifetime_rounds = 0.0;
  // Repair loop:
  long long degraded_events = 0;  ///< events fed to the maintainer
  long long improved_events = 0;
  long long repairs_applied = 0;  ///< accepted parent changes
  // Estimator vs oracle (kEstimator only; zero/NaN otherwise):
  long long detections = 0;            ///< estimator events matching a true change
  double mean_detection_lag_rounds = 0.0;
  long long false_positive_events = 0; ///< no true change behind the event
  long long missed_events = 0;         ///< true changes never detected
  double estimate_mae = 0.0;           ///< mean |estimate - true PRR| at the end
  // Final state (true network):
  double final_reliability = 0.0;
  double final_lifetime = 0.0;
  bool bound_met = false;
};

/// \brief Runs the closed loop for `options.rounds` rounds.
/// \param net  taken by value: churn mutates the link qualities as the run
///        progresses.
/// \param tree  the construction-time aggregation tree (e.g. from IRA).
/// \param lifetime_bound  the LC every repair must preserve.
/// \param options  ARQ/channel/estimator/churn/repair configuration
///        (validated on entry).
/// \return delivery, energy, repair, and estimator-vs-oracle statistics
///         plus the final true-network reliability and lifetime.
DataPlaneResult run_dataplane(wsn::Network net, wsn::AggregationTree tree,
                              double lifetime_bound,
                              const DataPlaneOptions& options);

}  // namespace mrlc::dist
