#include "baselines/mst_baseline.hpp"

#include "graph/mst.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {

MstResult mst_baseline(const wsn::Network& net) {
  net.validate();
  const auto mst = graph::prim_mst(net.topology(), net.sink());
  MRLC_ENSURE(mst.has_value(), "validate() guarantees connectivity");
  MstResult out{wsn::AggregationTree::from_edges(net, mst->edges), 0.0, 0.0, 0.0};
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  return out;
}

}  // namespace mrlc::baselines
