#include "baselines/aaml.hpp"

#include "common/rng.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/traversal.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {

namespace {

constexpr double kTol = 1e-9;

/// Ascending per-node lifetime profile — the lexicographic objective.
/// It takes finitely many values over spanning trees and strictly
/// increases at every accepted lexicographic step, so AAML terminates.
std::vector<double> lifetime_profile(const wsn::Network& net,
                                     const wsn::AggregationTree& tree) {
  std::vector<double> profile(static_cast<std::size_t>(net.node_count()));
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    profile[static_cast<std::size_t>(v)] = wsn::node_lifetime(net, tree, v);
  }
  std::sort(profile.begin(), profile.end());
  return profile;
}

/// Tolerant lexicographic comparison: near-equal entries count as equal so
/// floating-point noise cannot masquerade as progress.
bool lex_greater(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + kTol) return true;
    if (a[i] < b[i] - kTol) return false;
  }
  return false;
}

}  // namespace

AamlResult aaml(const wsn::Network& net, const AamlOptions& options) {
  net.validate();
  MRLC_REQUIRE(options.max_steps >= 0, "step cap must be non-negative");

  // "Starts from an arbitrary tree": either a random spanning tree
  // (randomized frontier growth from the sink) or the BFS tree.
  std::vector<wsn::VertexId> parents;
  if (options.initial == AamlInitialTree::kBfs) {
    const graph::BfsTree bfs = graph::bfs_tree(net.topology(), net.sink());
    parents = bfs.parent_vertex;
  } else {
    // Randomized Prim: repeatedly attach a uniformly random frontier edge.
    Rng rng(options.seed);
    const int n = net.node_count();
    parents.assign(static_cast<std::size_t>(n), -1);
    std::vector<bool> attached(static_cast<std::size_t>(n), false);
    attached[static_cast<std::size_t>(net.sink())] = true;
    std::vector<graph::EdgeId> frontier(net.topology().incident(net.sink()).begin(),
                                        net.topology().incident(net.sink()).end());
    while (!frontier.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frontier.size()) - 1));
      const graph::EdgeId id = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      const graph::Edge& e = net.topology().edge(id);
      const wsn::VertexId parent = attached[static_cast<std::size_t>(e.u)] ? e.u : e.v;
      const wsn::VertexId child = e.u == parent ? e.v : e.u;
      if (attached[static_cast<std::size_t>(child)]) continue;  // stale edge
      attached[static_cast<std::size_t>(child)] = true;
      parents[static_cast<std::size_t>(child)] = parent;
      for (graph::EdgeId next : net.topology().incident(child)) {
        const wsn::VertexId other = net.topology().edge(next).other(child);
        if (!attached[static_cast<std::size_t>(other)]) frontier.push_back(next);
      }
    }
  }
  parents[static_cast<std::size_t>(net.sink())] = -1;
  wsn::AggregationTree tree = wsn::AggregationTree::from_parents(net, parents);

  std::vector<double> profile = lifetime_profile(net, tree);
  int steps = 0;

  while (steps < options.max_steps) {
    const double bottleneck_lifetime = profile.front();

    // Candidate moves: re-parent a child of any bottleneck-level node.
    struct Move {
      wsn::VertexId child = -1;
      wsn::VertexId new_parent = -1;
      wsn::EdgeId via = -1;
      std::vector<double> profile;
    };
    std::optional<Move> best;

    const auto children = tree.children_lists();
    for (wsn::VertexId b = 0; b < net.node_count(); ++b) {
      if (wsn::node_lifetime(net, tree, b) > bottleneck_lifetime + kTol) continue;
      for (wsn::VertexId c : children[static_cast<std::size_t>(b)]) {
        for (graph::EdgeId id : net.topology().incident(c)) {
          const wsn::VertexId p = net.topology().edge(id).other(c);
          if (p == b || tree.in_subtree(c, p)) continue;

          wsn::AggregationTree trial = tree;
          trial.reparent(net, c, p, id);
          std::vector<double> trial_profile = lifetime_profile(net, trial);

          const bool improves =
              options.mode == AamlSearchMode::kStrictMinImprovement
                  ? trial_profile.front() > profile.front() + kTol
                  : lex_greater(trial_profile, profile);
          if (!improves) continue;
          const bool better_than_best =
              !best.has_value() ||
              (options.mode == AamlSearchMode::kStrictMinImprovement
                   ? trial_profile.front() > best->profile.front() + kTol
                   : lex_greater(trial_profile, best->profile));
          if (better_than_best) {
            best = Move{c, p, id, std::move(trial_profile)};
          }
        }
      }
    }

    if (!best.has_value()) break;  // local optimum
    tree.reparent(net, best->child, best->new_parent, best->via);
    profile = std::move(best->profile);
    ++steps;
  }

  AamlResult out{std::move(tree), 0.0, 0.0, 0.0, steps};
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  return out;
}

}  // namespace mrlc::baselines
