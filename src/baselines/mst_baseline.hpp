#pragma once

/// \file mst_baseline.hpp
/// \brief The MST baseline: Prim's algorithm on link costs (Section VII).
///
/// The minimum-cost spanning tree ignores the lifetime constraint entirely;
/// since the MRLC optimum can never cost less, the paper uses it as the
/// lower bound on achievable cost (equivalently, the upper bound on
/// reliability).

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::baselines {

struct MstResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
};

/// Minimum-cost aggregation tree via Prim from the sink.
/// Throws InfeasibleError if the topology is disconnected.
MstResult mst_baseline(const wsn::Network& net);

}  // namespace mrlc::baselines
