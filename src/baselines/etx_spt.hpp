#pragma once

/// \file etx_spt.hpp
/// \brief ETX shortest-path-tree baseline (Couto et al. [10] / CTP [7]).
///
/// Link-quality routing as deployed in practice: every node routes to the
/// sink along the path minimizing the total *expected transmission count*
/// ETX(e) = 1/q_e.  The union of those paths is a shortest-path tree —
/// a natural third point of comparison between the paper's extremes:
///
/// * vs MST: the SPT optimizes per-node end-to-end delivery, not the
///   all-or-nothing round reliability Q(T), so its product-of-PRR can be
///   worse than the MST's even though each node's own path looks good;
/// * vs AAML: it is quality-aware but completely lifetime-blind — popular
///   next-hops collect many children and die early.
///
/// The paper argues ETX-style forwarding is the wrong tool for
/// aggregation trees (Section III-A); this baseline quantifies that.

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::baselines {

struct EtxSptResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  double max_path_etx = 0.0;  ///< worst node's expected transmissions to sink
};

/// Builds the ETX shortest-path tree rooted at the sink.
/// Throws InfeasibleError if the topology is disconnected.
EtxSptResult etx_spt(const wsn::Network& net);

}  // namespace mrlc::baselines
