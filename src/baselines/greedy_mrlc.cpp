#include "baselines/greedy_mrlc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/dsu.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {

GreedyMrlcResult greedy_mrlc(const wsn::Network& net, double lifetime_bound,
                             const GreedyMrlcOptions& options) {
  net.validate();
  MRLC_REQUIRE(lifetime_bound > 0.0, "lifetime bound must be positive");
  MRLC_REQUIRE(options.max_cap_relaxations >= 0, "relaxation budget >= 0");

  const int n = net.node_count();
  const auto& g = net.topology();

  // Integer degree budgets implied by the children caps at LC.
  std::vector<int> base_budget(static_cast<std::size_t>(n));
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double children = net.max_children_real(v, lifetime_bound);
    const double degree = v == net.sink() ? children : children + 1.0;
    base_budget[static_cast<std::size_t>(v)] =
        std::max(0, static_cast<int>(std::floor(degree + 1e-9)));
  }

  std::vector<graph::EdgeId> ids = g.alive_edge_ids();
  std::sort(ids.begin(), ids.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return g.edge(a).weight < g.edge(b).weight;
  });

  for (int relax = 0; relax <= options.max_cap_relaxations; ++relax) {
    graph::DisjointSetUnion dsu(n);
    std::vector<int> degree(static_cast<std::size_t>(n), 0);
    std::vector<graph::EdgeId> chosen;
    chosen.reserve(static_cast<std::size_t>(n - 1));

    for (graph::EdgeId id : ids) {
      const graph::Edge& e = g.edge(id);
      if (degree[static_cast<std::size_t>(e.u)] >=
              base_budget[static_cast<std::size_t>(e.u)] + relax ||
          degree[static_cast<std::size_t>(e.v)] >=
              base_budget[static_cast<std::size_t>(e.v)] + relax) {
        continue;
      }
      if (!dsu.unite(e.u, e.v)) continue;
      ++degree[static_cast<std::size_t>(e.u)];
      ++degree[static_cast<std::size_t>(e.v)];
      chosen.push_back(id);
      if (static_cast<int>(chosen.size()) == n - 1) break;
    }
    if (static_cast<int>(chosen.size()) != n - 1) continue;  // stuck; relax

    GreedyMrlcResult out;
    out.tree = wsn::AggregationTree::from_edges(net, chosen);
    out.cost = wsn::tree_cost(net, out.tree);
    out.reliability = wsn::tree_reliability(net, out.tree);
    out.lifetime = wsn::network_lifetime(net, out.tree);
    out.meets_bound = out.lifetime >= lifetime_bound * (1.0 - 1e-12);
    out.cap_relaxations = relax;
    return out;
  }
  throw InfeasibleError(
      "degree-capped Kruskal could not span the network within the cap "
      "relaxation budget");
}

}  // namespace mrlc::baselines
