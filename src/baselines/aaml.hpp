#pragma once

/// \file aaml.hpp
/// \brief AAML — Approximation Algorithm for Maximizing Lifetime
/// (Wu, Fahmy, Shroff, INFOCOM 2008), the paper's main comparison baseline.
///
/// Reimplemented from its description in the MRLC paper (Section VII):
/// "AAML starts from an arbitrary tree and iteratively reduces the load on
/// bottleneck nodes.  The bottleneck nodes are likely to deplete their
/// energy due to high number of children or low remaining energy."
///
/// Concretely: starting from a BFS tree rooted at the sink, each step
/// re-parents one child of a current bottleneck (minimum-lifetime) node to
/// another neighbour.  Two acceptance rules are provided:
///
/// * `kStrictMinImprovement` (default, matches the published evaluation's
///   behaviour): a move is accepted only if it strictly increases the
///   *network* lifetime.  When several nodes tie at the bottleneck
///   lifetime, no single move can raise the minimum, so the search stops —
///   exactly the "near optimal but not optimal" plateaus the paper reports.
/// * `kLexicographic` (stronger ablation variant): a move is accepted if it
///   raises the ascending per-node lifetime profile lexicographically,
///   which continues balancing past ties and reaches longer lifetimes.
///
/// Either way AAML ignores link quality entirely, exactly as in the
/// original algorithm; this is what the MRLC paper exploits when it shows
/// AAML's poor reliability.

#include <cstdint>

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::baselines {

enum class AamlSearchMode {
  kStrictMinImprovement,
  kLexicographic,
};

/// Initial tree choice.  The paper says "starts from an arbitrary tree";
/// a random spanning tree (default) is the faithful reading and — combined
/// with strict-min acceptance — reproduces the mediocre lifetimes the
/// paper's evaluation reports (random trees have tied bottlenecks, which
/// strict-min search cannot break).  A BFS start is offered for ablation:
/// its unique sink bottleneck lets strict-min search run much further.
enum class AamlInitialTree { kRandom, kBfs };

struct AamlOptions {
  /// Upper bound on improvement steps (each strictly improves a bounded
  /// objective over a finite set of trees, so termination is guaranteed
  /// anyway; the cap is a safety net).
  int max_steps = 100000;
  AamlSearchMode mode = AamlSearchMode::kStrictMinImprovement;
  AamlInitialTree initial = AamlInitialTree::kRandom;
  /// Seed for the random initial tree (ignored for kBfs).
  std::uint64_t seed = 1;
};

struct AamlResult {
  wsn::AggregationTree tree;
  double lifetime = 0.0;
  double cost = 0.0;
  double reliability = 0.0;
  int steps = 0;  ///< accepted re-parenting moves
};

/// Runs AAML on `net`.  Throws InfeasibleError if the topology is
/// disconnected.
AamlResult aaml(const wsn::Network& net, const AamlOptions& options = {});

}  // namespace mrlc::baselines
