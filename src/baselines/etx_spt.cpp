#include "baselines/etx_spt.hpp"

#include <algorithm>

#include "graph/shortest_path.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {

EtxSptResult etx_spt(const wsn::Network& net) {
  net.validate();
  const graph::ShortestPaths paths = graph::dijkstra(
      net.topology(), net.sink(),
      [&](graph::EdgeId id) { return 1.0 / net.link_prr(id); });

  std::vector<wsn::VertexId> parents(paths.parent_vertex);
  parents[static_cast<std::size_t>(net.sink())] = -1;
  EtxSptResult out;
  out.tree = wsn::AggregationTree::from_parents(net, std::move(parents));
  out.cost = wsn::tree_cost(net, out.tree);
  out.reliability = wsn::tree_reliability(net, out.tree);
  out.lifetime = wsn::network_lifetime(net, out.tree);
  out.max_path_etx = *std::max_element(paths.distance.begin(), paths.distance.end());
  return out;
}

}  // namespace mrlc::baselines
