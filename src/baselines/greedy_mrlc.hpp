#pragma once

/// \file greedy_mrlc.hpp
/// \brief Degree-capped Kruskal: the natural cheap heuristic for MRLC.
///
/// A practitioner's first instinct is "run Kruskal, but refuse edges that
/// would push a node past the children budget implied by LC".  This module
/// implements that heuristic faithfully so the ablation benches can
/// quantify what IRA's LP machinery actually buys:
///
/// * greedy can get *stuck* (a valid tree exists but the greedy prefix
///   blocks it) — it then retries with the caps relaxed by one child at a
///   time, reporting how much relaxation was needed;
/// * even when it finishes within the caps its cost can exceed IRA's,
///   because a locally cheap edge can force expensive edges later.
///
/// See bench/micro_ablations.cpp ("greedy vs IRA").

#include <optional>

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::baselines {

struct GreedyMrlcResult {
  wsn::AggregationTree tree;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  bool meets_bound = false;
  /// How many children of cap relaxation were required before the greedy
  /// sweep completed a spanning tree (0 = finished within the LC caps).
  int cap_relaxations = 0;
};

struct GreedyMrlcOptions {
  /// Give up after relaxing the caps this many times (each relaxation adds
  /// one child of budget to every node).
  int max_cap_relaxations = 16;
};

/// Runs degree-capped Kruskal for lifetime bound `lifetime_bound`.
/// \throws InfeasibleError if the topology is disconnected or the cap
///         relaxation budget is exhausted (cannot happen for connected
///         graphs with the default budget at the paper's scales).
GreedyMrlcResult greedy_mrlc(const wsn::Network& net, double lifetime_bound,
                             const GreedyMrlcOptions& options = {});

}  // namespace mrlc::baselines
